"""An autonomous-vehicle perception pipeline, executed event by event.

The paper's models are analytic; this example runs the *system* instead:
six diverse ML modules classify a 10 Hz stream of traffic-sign frames
behind a BFT voter while faults compromise modules, compromised modules
crash, repairs bring them back, and the rejuvenation clock proactively
cleanses one random module every 10 minutes.

Two voting agreement models are compared:

* worst-case — all wrong outputs collude (the analytic model's reading);
* per-label  — wrong outputs carry real (usually differing) labels, so
  disagreeing wrong modules push the vote to a safe "inconclusive"
  instead of an error.

Run:  python examples/av_pipeline_simulation.py
"""

from repro import PerceptionParameters
from repro.perception.evaluation import evaluate
from repro.simulation import AgreementModel, PerceptionRuntime

SIMULATED_HOURS = 24.0


def drive(parameters: PerceptionParameters, agreement: AgreementModel, seed: int):
    runtime = PerceptionRuntime(
        parameters,
        request_period=0.1,  # 10 Hz camera frames
        agreement=agreement,
        n_labels=43,  # GTSRB-sized label space
        seed=seed,
    )
    return runtime.run(SIMULATED_HOURS * 3600.0, warmup=600.0)


def main() -> None:
    parameters = PerceptionParameters.six_version_defaults()
    analytic = evaluate(parameters).expected_reliability

    print(f"simulating {SIMULATED_HOURS:.0f} h of driving at 10 Hz "
          f"({SIMULATED_HOURS * 36000:.0f} frames), six-version + rejuvenation")
    print(f"analytic E[R] (safe-skip, Eq. 1): {analytic:.4f}")
    print()

    for agreement in (AgreementModel.WORST_CASE, AgreementModel.PER_LABEL):
        report = drive(parameters, agreement, seed=2023)
        print(f"-- voter agreement model: {agreement.value} --")
        print(f"  frames voted        : {report.requests}")
        print(f"  correct             : {report.correct}"
              f"  ({report.correct / report.requests:.2%})")
        print(f"  perception errors   : {report.errors}"
              f"  ({report.errors / report.requests:.2%})")
        print(f"  inconclusive (safe) : {report.inconclusive}")
        print(f"  empirical reliability (safe-skip) : "
              f"{report.reliability_safe_skip:.4f}")
        print()

    print(
        "The worst-case voter matches the analytic model; with realistic\n"
        "per-label voting, wrong modules rarely agree on the same wrong\n"
        "sign, so nearly all would-be errors become safe skips — the\n"
        "analytic model is a conservative bound."
    )


if __name__ == "__main__":
    main()
