"""Quickstart: reproduce the paper's headline result in ~20 lines.

Evaluates the two configurations of §V-B with the Table II defaults:

* a four-version perception system without rejuvenation (Fig. 2a),
* a six-version perception system with time-based rejuvenation
  (Fig. 2b+c),

and prints the expected output reliability of each, the improvement, and
the per-state breakdown of the rejuvenating system.

Run:  python examples/quickstart.py
"""

from repro import PerceptionParameters, PerceptionSystem


def main() -> None:
    baseline = PerceptionSystem(PerceptionParameters.four_version_defaults())
    rejuvenating = PerceptionSystem(PerceptionParameters.six_version_defaults())

    r4 = baseline.expected_reliability()
    r6 = rejuvenating.expected_reliability()

    print("N-version perception systems, Table II defaults")
    print(f"  4-version, no rejuvenation : E[R] = {r4:.7f}   (paper: 0.8233477)")
    print(f"  6-version, rejuvenation    : E[R] = {r6:.7f}   (paper: 0.93464665)")
    print(f"  improvement                : {(r6 / r4 - 1) * 100:.1f} %  (paper: >13 %)")
    print()

    print("Six-version steady state, top (healthy, compromised, unavailable) states:")
    for state, probability, reliability in rejuvenating.analyze().top_states(6):
        print(
            f"  ({state.healthy}, {state.compromised}, {state.unavailable})"
            f"   pi = {probability:.4f}   R = {reliability:.4f}"
        )


if __name__ == "__main__":
    main()
