"""Rejuvenation under bursty attack campaigns (threat-model extension).

The paper's models assume attacks arrive at a constant rate λc.  Real
adversaries attack in waves.  This example drives the executable runtime
under three threat profiles with the *same average* attack intensity:

1. constant pressure (the paper's assumption),
2. moderate waves (3 x base rate, half the time),
3. sharp bursts (11 x base rate, 10 % of the time),

and measures, for the four-version baseline and the six-version
rejuvenating system: the empirical output reliability and the longest
run of consecutive misperceptions.

The punchline is a *validation* of the paper's threat model: at equal
average intensity, burstiness barely moves either metric — module
compromises outlive the attack waves that cause them (mean time in the
compromised state is ~3000 s), so the system responds to the average
pressure, not its timing.  The constant-λc assumption is a good one.

Run:  python examples/attack_waves.py
"""

from repro import PerceptionParameters
from repro.simulation import AttackCampaign, PerceptionRuntime

HORIZON = 400_000.0
BASE_MTTC = 1523.0


def profiles() -> dict[str, AttackCampaign | None]:
    moderate = AttackCampaign.periodic(
        period=2000.0, burst_duration=1000.0, intensity=3.0, horizon=HORIZON * 1.1
    )
    sharp = AttackCampaign.periodic(
        period=2000.0, burst_duration=200.0, intensity=11.0, horizon=HORIZON * 1.1
    )
    return {
        "constant pressure": None,
        "moderate waves (3x, 50%)": moderate,
        "sharp bursts (11x, 10%)": sharp,
    }


def effective_mttc(campaign: AttackCampaign | None) -> float:
    """Scale the base mttc so every profile has equal *average* intensity."""
    if campaign is None:
        return BASE_MTTC / 2.0  # constant 2x pressure
    return BASE_MTTC  # waves already average to 2x


def run(parameters: PerceptionParameters, campaign: AttackCampaign | None, seed: int):
    runtime = PerceptionRuntime(
        parameters.replace(mttc=effective_mttc(campaign)),
        request_period=1.0,
        seed=seed,
        campaign=campaign,
    )
    return runtime.run(HORIZON, warmup=2000.0)


def main() -> None:
    four = PerceptionParameters.four_version_defaults()
    six = PerceptionParameters.six_version_defaults()

    print(f"{'threat profile':28s} {'system':12s} {'E[R] (safe-skip)':>17s} "
          f"{'longest error burst':>20s}")
    for name, campaign in profiles().items():
        if campaign is not None:
            mean = campaign.average_multiplier(HORIZON)
            assert abs(mean - 2.0) < 0.05, "profiles must share average intensity"
        for label, parameters in (("4v baseline", four), ("6v rejuvenating", six)):
            report = run(parameters, campaign, seed=17)
            print(
                f"{name:28s} {label:12s} {report.reliability_safe_skip:>17.4f} "
                f"{report.longest_error_burst:>20d}"
            )
    print()
    print(
        "Reading: at equal average intensity, attack burstiness moves both\n"
        "metrics by at most a few tenths of a percent — a compromise outlives\n"
        "the wave that caused it (mean ~3000 s in the compromised state), so\n"
        "only the average pressure matters. This validates the paper's\n"
        "constant-rate threat model, and rejuvenation helps under every\n"
        "profile (~0.73 -> ~0.91 here)."
    )


if __name__ == "__main__":
    main()
