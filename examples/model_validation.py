"""Validating the analytic model against the executable system.

Three implementations of the six-version rejuvenating perception system
must agree:

1. the analytic MRGP solution (exact, milliseconds),
2. the generic DSPN Monte-Carlo simulator (confidence intervals),
3. the event-driven perception runtime (real voting on a frame stream),
   whose per-state dwell times are compared against the analytic
   stationary distribution state by state.

Run:  python examples/model_validation.py
"""

from repro import PerceptionParameters, PerceptionSystem
from repro.simulation import PerceptionRuntime, compare_with_analytic

HORIZON = 500_000.0  # simulated seconds for the reward estimates
DWELL_HORIZON = 2_000_000.0  # longer horizon for the per-state comparison
# The module census decorrelates on the mttc timescale (~1500 s), so the
# per-state comparison needs a long horizon: DWELL_HORIZON gives ~1300
# effective samples, putting the expected total-variation distance from
# pure sampling noise around 0.02.
_TVD_THRESHOLD = 0.05


def main() -> None:
    parameters = PerceptionParameters.six_version_defaults()
    system = PerceptionSystem(parameters)

    analytic = system.expected_reliability()
    print(f"1) analytic (MRGP)      : E[R] = {analytic:.5f}")

    estimate = system.simulate(
        horizon=HORIZON, warmup=5000.0, replications=6, seed=11
    )
    low, high = estimate.interval
    print(
        f"2) DSPN Monte-Carlo     : E[R] = {estimate.mean:.5f} "
        f"(95% CI [{low:.5f}, {high:.5f}]) — "
        f"{'agrees' if estimate.covers(analytic) else 'disagrees'}"
    )

    runtime = PerceptionRuntime(parameters, request_period=5.0, seed=11)
    report = runtime.run(HORIZON, warmup=5000.0, collect_occupancy=False)
    print(
        f"3) perception runtime   : E[R] = {report.reliability_safe_skip:.5f} "
        f"({report.requests} frames voted)"
    )
    print()

    print("state-by-state check: runtime dwell fractions vs analytic pi")
    dwell_runtime = PerceptionRuntime(parameters, request_period=50.0, seed=12)
    dwell_report = dwell_runtime.run(
        DWELL_HORIZON, warmup=5000.0, collect_occupancy=True
    )
    comparison = compare_with_analytic(dwell_report.occupancy, parameters)
    print(comparison.render(limit=8))
    print()
    verdict = (
        "distributions agree"
        if comparison.total_variation_distance < _TVD_THRESHOLD
        else "distributions diverge — investigate"
    )
    print(f"verdict: {verdict} "
          f"(TVD = {comparison.total_variation_distance:.4f} over "
          f"{DWELL_HORIZON:.0f} simulated seconds)")


if __name__ == "__main__":
    main()
