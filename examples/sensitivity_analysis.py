"""Which parameter matters most? (Fig. 4 + an elasticity tornado.)

Reruns the paper's four sensitivity sweeps — mean time to compromise,
error dependency, healthy inaccuracy, compromised inaccuracy — locating
the crossover points between the two architectures, then ranks all
parameters by elasticity (percent change of E[R] per percent change of
the parameter), an analysis the paper does not include.

Run:  python examples/sensitivity_analysis.py
"""

from repro import PerceptionParameters
from repro.analysis import elasticities, find_crossovers
from repro.experiments import run_experiment


def main() -> None:
    for experiment_id in ("fig4a", "fig4b", "fig4c", "fig4d"):
        report = run_experiment(experiment_id)
        print(report.render(plot=False))
        print()

    print("== elasticity ranking (six-version system, Table II defaults) ==")
    six = PerceptionParameters.six_version_defaults()
    print(f"{'parameter':28s} {'base':>10s} {'elasticity':>11s}")
    for result in elasticities(
        six, ["p", "p_prime", "alpha", "mttc", "mttf", "mttr", "rejuvenation_interval"]
    ):
        bar = "#" * min(40, int(abs(result.elasticity) * 400))
        print(
            f"{result.parameter:28s} {result.base_value:>10.4g} "
            f"{result.elasticity:>+11.4f}  {bar}"
        )
    print()

    print("== where does rejuvenation stop paying off? ==")
    four = PerceptionParameters.four_version_defaults()
    for crossing in find_crossovers(four, six, "p_prime", [0.05, 0.3, 0.6]):
        print(
            f"  p' = {crossing.value:.3f}: below this the 4-version system wins, "
            f"above it rejuvenation wins (E[R] at tie: {crossing.reliability:.4f})"
        )


if __name__ == "__main__":
    main()
