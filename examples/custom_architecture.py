"""Modeling your own perception architecture with the DSPN toolkit.

The paper instantiates two architectures; this example builds a *third*
one directly against the Petri net API: a three-version system with
simple 2-out-of-3 majority voting (the scheme of Wen & Machida [11]) and
a rejuvenation clock, which is outside the BFT sizing rules the
high-level PerceptionParameters enforce.

It shows the full low-level workflow:

1. build the DSPN with NetBuilder (guards, weights, a deterministic
   clock),
2. solve it (the library picks the MRGP route automatically),
3. attach a custom reliability reward and compute E[R],
4. cross-check by discrete-event simulation,
5. export the net to Graphviz for inspection.

Run:  python examples/custom_architecture.py
"""

from repro.dspn import simulate, solve_steady_state
from repro.nversion import GeneralizedReliability
from repro.petri import NetBuilder, count
from repro.petri.dot import to_dot

MTTC = 1523.0  # mean time to compromise (s), as in Table II
MTTF = 3000.0  # mean time from compromised to crashed (s)
MTTR = 3.0  # repair time (s)
REJUVENATION_INTERVAL = 600.0
REJUVENATION_TIME = 3.0


def build_three_version_net():
    """A 3-version pool with a clock that rejuvenates one module."""
    builder = NetBuilder("three-version-majority")
    builder.place("Pmh", tokens=3).place("Pmc").place("Pmf").place("Pmr")
    builder.place("Prc", tokens=1).place("Ptr").place("Pac")

    builder.exponential("Tc", rate=1 / MTTC, inputs={"Pmh": 1}, outputs={"Pmc": 1})
    builder.exponential("Tf", rate=1 / MTTF, inputs={"Pmc": 1}, outputs={"Pmf": 1})
    builder.exponential("Tr", rate=1 / MTTR, inputs={"Pmf": 1}, outputs={"Pmh": 1})

    builder.deterministic(
        "Trc", delay=REJUVENATION_INTERVAL, inputs={"Prc": 1}, outputs={"Ptr": 1}
    )
    builder.immediate(
        "Tac",
        priority=3,
        guard=(count("Pac") + count("Pmr")) == 0,
        inputs={"Ptr": 1},
        outputs={"Ptr": 1, "Pac": 1},
    )
    guard_capacity = (count("Pmf") + count("Pmr")) < 1
    builder.immediate(
        "Trj1",
        priority=2,
        guard=guard_capacity,
        weight=lambda m: max(m["Pmc"], 1e-5) / max(m["Pmc"] + m["Pmh"], 1),
        inputs={"Pmc": 1, "Pac": 1},
        outputs={"Pmr": 1},
    )
    builder.immediate(
        "Trj2",
        priority=2,
        guard=guard_capacity,
        weight=lambda m: max(m["Pmh"], 1e-5) / max(m["Pmc"] + m["Pmh"], 1),
        inputs={"Pmh": 1, "Pac": 1},
        outputs={"Pmr": 1},
    )
    builder.immediate(
        "Trt",
        priority=1,
        guard=(count("Pmr") + count("Pac")) > 0,
        inputs={"Ptr": 1},
        outputs={"Prc": 1},
    )
    builder.exponential(
        "Trj",
        rate=lambda m: 1.0 / (REJUVENATION_TIME * m["Pmr"]),
        guard=count("Pmr") > 0,
        inputs={"Pmr": 1},
        outputs={"Pmh": 1},
    )
    return builder.build()


def main() -> None:
    net = build_three_version_net()
    result = solve_steady_state(net)
    print(f"net solved via {result.method.upper()}, "
          f"{len(result.markings)} tangible markings")

    # 2-out-of-3 majority voting with the generalized reliability model
    majority = GeneralizedReliability(
        n_modules=3, threshold=2, p=0.08, p_prime=0.5, alpha=0.5
    )

    def reward(marking):
        return majority(
            marking["Pmh"], marking["Pmc"], marking["Pmf"] + marking["Pmr"]
        )

    analytic = result.expected_reward(reward)
    print(f"analytic E[R] (2-out-of-3 majority): {analytic:.5f}")

    estimate = simulate(
        net, reward=reward, horizon=100000.0, warmup=2000.0,
        replications=6, seed=7,
    )
    low, high = estimate.interval
    print(f"simulated E[R]: {estimate.mean:.5f}  (95 % CI [{low:.5f}, {high:.5f}])")

    print()
    print("steady-state module census:")
    for marking, probability in result.distribution()[:5]:
        print(f"  pi = {probability:.4f}   {marking.compact()}")

    dot = to_dot(net)
    print()
    print(f"Graphviz export: {len(dot.splitlines())} lines "
          "(render with `dot -Tpng` to compare against Fig. 2)")


if __name__ == "__main__":
    main()
