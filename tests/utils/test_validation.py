"""Tests for repro.utils.validation."""

import math

import pytest

from repro.errors import ParameterError
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 1.5) == 1.5

    def test_accepts_int(self):
        assert check_positive("x", 3) == 3.0

    def test_rejects_zero(self):
        with pytest.raises(ParameterError, match="x must be > 0"):
            check_positive("x", 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            check_positive("x", -0.1)

    def test_rejects_nan(self):
        with pytest.raises(ParameterError, match="NaN"):
            check_positive("x", float("nan"))

    def test_rejects_infinity_by_default(self):
        with pytest.raises(ParameterError, match="finite"):
            check_positive("x", math.inf)

    def test_allows_infinity_when_requested(self):
        assert check_positive("x", math.inf, allow_inf=True) == math.inf

    def test_rejects_bool(self):
        with pytest.raises(ParameterError, match="bool"):
            check_positive("x", True)

    def test_rejects_non_numeric(self):
        with pytest.raises(ParameterError):
            check_positive("x", "fast")

    def test_error_message_names_parameter(self):
        with pytest.raises(ParameterError, match="my_rate"):
            check_positive("my_rate", -1)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            check_non_negative("x", -1e-9)

    def test_rejects_infinity_by_default(self):
        with pytest.raises(ParameterError):
            check_non_negative("x", math.inf)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 2.0])
    def test_rejects_outside(self, value):
        with pytest.raises(ParameterError):
            check_probability("p", value)


class TestCheckFraction:
    def test_accepts_one(self):
        assert check_fraction("f", 1.0) == 1.0

    def test_rejects_zero(self):
        with pytest.raises(ParameterError):
            check_fraction("f", 0.0)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 2.0, 2.0, 3.0) == 2.0
        assert check_in_range("x", 3.0, 2.0, 3.0) == 3.0

    def test_exclusive_bounds_reject_endpoints(self):
        with pytest.raises(ParameterError):
            check_in_range("x", 2.0, 2.0, 3.0, inclusive=False)

    def test_exclusive_accepts_interior(self):
        assert check_in_range("x", 2.5, 2.0, 3.0, inclusive=False) == 2.5


class TestIntChecks:
    def test_positive_int(self):
        assert check_positive_int("n", 4) == 4

    def test_positive_int_rejects_zero(self):
        with pytest.raises(ParameterError):
            check_positive_int("n", 0)

    def test_non_negative_int_accepts_zero(self):
        assert check_non_negative_int("n", 0) == 0

    def test_rejects_fractional_float(self):
        with pytest.raises(ParameterError):
            check_non_negative_int("n", 2.5)

    def test_accepts_integral_float(self):
        assert check_non_negative_int("n", 2.0) == 2

    def test_rejects_bool(self):
        with pytest.raises(ParameterError):
            check_positive_int("n", True)

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            check_non_negative_int("n", -1)
