"""Tests for repro.utils.ascii_plot."""

import pytest

from repro.utils.ascii_plot import line_plot


class TestLinePlot:
    def test_contains_markers_and_legend(self):
        text = line_plot([0, 1, 2], {"up": [0.0, 0.5, 1.0]})
        assert "*" in text
        assert "*=up" in text

    def test_two_series_distinct_markers(self):
        text = line_plot([0, 1], {"a": [0, 1], "b": [1, 0]})
        assert "*=a" in text
        assert "o=b" in text

    def test_monotone_series_extremes_on_correct_rows(self):
        text = line_plot([0, 1, 2, 3], {"s": [0, 1, 2, 3]}, height=4, width=20)
        rows = [line for line in text.splitlines() if "|" in line]
        # max value appears on the top plot row, min on the bottom one
        assert "*" in rows[0].split("|")[1]
        assert "*" in rows[-1].split("|")[1]

    def test_axis_labels_present(self):
        text = line_plot([1, 2], {"s": [5, 6]}, x_label="time", title="T")
        assert "time" in text
        assert "T" in text

    def test_constant_series_does_not_crash(self):
        text = line_plot([0, 1], {"s": [1.0, 1.0]})
        assert "*" in text

    def test_empty_x_raises(self):
        with pytest.raises(ValueError):
            line_plot([], {"s": []})

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="expected 2"):
            line_plot([0, 1], {"s": [1.0]})

    def test_too_many_series_raises(self):
        series = {f"s{i}": [0, 1] for i in range(9)}
        with pytest.raises(ValueError, match="at most"):
            line_plot([0, 1], series)
