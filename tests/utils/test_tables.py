"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import render_table


class TestRenderTable:
    def test_basic_alignment(self):
        text = render_table(["name", "value"], [["a", 1.0], ["longer", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "longer" in lines[3]
        # all rows share the same column start for "value"
        value_column = lines[0].index("value")
        assert lines[2][value_column:].startswith("1.0")

    def test_float_format(self):
        text = render_table(["v"], [[0.123456789]], float_format=".3f")
        assert "0.123" in text
        assert "0.1234" not in text

    def test_markdown_mode(self):
        text = render_table(["a", "b"], [[1, 2]], markdown=True)
        assert text.splitlines()[0].startswith("| a")
        assert set(text.splitlines()[1].replace("|", "").strip()) <= {"-", " "}

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError, match="expected 2"):
            render_table(["a", "b"], [[1]])

    def test_bool_cells_render_as_bool_not_float(self):
        text = render_table(["flag"], [[True]])
        assert "True" in text

    def test_integers_not_float_formatted(self):
        text = render_table(["n"], [[42]])
        assert "42" in text
        assert "42.0" not in text

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert "a" in text
