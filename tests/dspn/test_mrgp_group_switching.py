"""MRGP regeneration across *different* deterministic transitions.

The kernel construction groups markings by their enabled deterministic
transition; an exponential firing may carry the process from the domain
of one deterministic transition into the domain of another.  That exit
is a regeneration (enabling-memory policy: the old timer is lost, the
new one starts fresh).  These tests pin that semantics.
"""

import numpy as np

from repro.dspn import solve_steady_state, simulate
from repro.petri import NetBuilder


def two_phase_net(exit_rate=0.5, delay_a=2.0, delay_b=3.0):
    """Phase A: deterministic dA (delay 2) races an exponential escape to
    phase B; in phase B deterministic dB (delay 3) leads back to A."""
    builder = NetBuilder("two-phase")
    builder.place("A", tokens=1).place("B").place("Done")
    builder.deterministic("dA", delay=delay_a, inputs={"A": 1}, outputs={"Done": 1})
    builder.exponential("escape", rate=exit_rate, inputs={"A": 1}, outputs={"B": 1})
    builder.deterministic("dB", delay=delay_b, inputs={"B": 1}, outputs={"A": 1})
    builder.exponential("restart", rate=1.0, inputs={"Done": 1}, outputs={"A": 1})
    return builder.build()


class TestGroupSwitching:
    def test_solves_and_normalizes(self):
        result = solve_steady_state(two_phase_net())
        assert result.method == "mrgp"
        assert np.isclose(result.pi.sum(), 1.0)

    def test_phase_b_fraction_analytic(self):
        """Hand renewal computation.

        Cycle from A: with q = P(escape before dA) = 1 - exp(-r*tau_A),
        E[time in A per visit] = (1 - exp(-r tau_A)) / r,
        then either B for exactly tau_B (prob q) or Done for Exp(1) (prob 1-q).
        Long-run fraction in B = q*tau_B / (E[A] + q*tau_B + (1-q)*1).
        """
        rate, tau_a, tau_b = 0.5, 2.0, 3.0
        q = 1 - np.exp(-rate * tau_a)
        e_a = q / rate
        expected_b = q * tau_b / (e_a + q * tau_b + (1 - q) * 1.0)
        result = solve_steady_state(two_phase_net(rate, tau_a, tau_b))
        measured = result.probability(lambda m: m["B"] == 1)
        assert np.isclose(measured, expected_b, rtol=1e-9)

    def test_simulation_agrees(self):
        net = two_phase_net()
        analytic = solve_steady_state(net).probability(lambda m: m["B"] == 1)
        estimate = simulate(
            net,
            reward=lambda m: float(m["B"]),
            horizon=20000.0,
            warmup=100.0,
            replications=6,
            seed=13,
        )
        assert abs(estimate.mean - analytic) < max(3 * estimate.half_width, 0.02)
