"""Tests for the Monte-Carlo transient profile."""

import numpy as np
import pytest

from repro.dspn import transient_profile, transient_rewards
from repro.errors import SimulationError


class TestArguments:
    def test_empty_times_rejected(self, two_state_net):
        with pytest.raises(SimulationError):
            transient_profile(two_state_net, reward=lambda m: 1.0, times=[])

    def test_negative_time_rejected(self, two_state_net):
        with pytest.raises(SimulationError):
            transient_profile(two_state_net, reward=lambda m: 1.0, times=[-1.0])

    def test_single_replication_rejected(self, two_state_net):
        with pytest.raises(SimulationError):
            transient_profile(
                two_state_net, reward=lambda m: 1.0, times=[1.0], replications=1
            )


class TestAgainstAnalyticTransient:
    def test_two_state_decay(self, two_state_net):
        """The Monte-Carlo trajectory matches uniformization."""
        times = [0.0, 20.0, 100.0, 400.0]
        reward = lambda m: float(m["Up"])  # noqa: E731
        analytic = transient_rewards(two_state_net, reward, times)
        profile = transient_profile(
            two_state_net, reward=reward, times=times, replications=300, seed=5
        )
        for analytic_value, mean, half in zip(
            analytic.rewards, profile.means, profile.half_widths
        ):
            assert abs(mean - analytic_value) < max(3 * half, 0.02)

    def test_time_zero_is_deterministic(self, two_state_net):
        profile = transient_profile(
            two_state_net,
            reward=lambda m: float(m["Up"]),
            times=[0.0],
            replications=5,
            seed=1,
        )
        assert profile.means[0] == 1.0
        assert profile.half_widths[0] == 0.0

    def test_times_sorted_in_result(self, two_state_net):
        profile = transient_profile(
            two_state_net,
            reward=lambda m: 1.0,
            times=[5.0, 1.0, 3.0],
            replications=3,
            seed=2,
        )
        assert profile.times == (1.0, 3.0, 5.0)


class TestClockedNet:
    def test_rejuvenating_profile_runs(self, clocked_net):
        """Works where the analytic transient refuses (deterministic)."""
        profile = transient_profile(
            clocked_net,
            reward=lambda m: float(m["Up"]),
            times=[0.0, 1.0, 5.0, 50.0],
            replications=200,
            seed=3,
        )
        # long-run up-fraction of the clocked net is 10/12
        assert abs(profile.means[-1] - 10.0 / 12.0) < 0.1

    def test_reproducible(self, clocked_net):
        kwargs = dict(
            reward=lambda m: float(m["Up"]),
            times=[2.0, 10.0],
            replications=10,
            seed=9,
        )
        a = transient_profile(clocked_net, **kwargs)
        b = transient_profile(clocked_net, **kwargs)
        assert a.means == b.means
