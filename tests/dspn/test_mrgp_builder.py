"""Tests for MRGP kernel construction from tangible graphs."""

import math

import numpy as np
import pytest

from repro.dspn.mrgp_builder import build_mrgp_kernels
from repro.errors import UnsupportedModelError
from repro.markov.mrgp import solve_mrgp
from repro.petri import NetBuilder
from repro.statespace import tangible_reachability


class TestClockOnlyNet:
    """A pure deterministic cycle: token moves A -> B every tau seconds."""

    def build(self, tau_ab=2.0, tau_ba=3.0):
        builder = NetBuilder("det-cycle")
        builder.place("A", tokens=1).place("B")
        builder.deterministic("ab", delay=tau_ab, inputs={"A": 1}, outputs={"B": 1})
        builder.deterministic("ba", delay=tau_ba, inputs={"B": 1}, outputs={"A": 1})
        return builder.build()

    def test_kernel_alternates(self):
        graph = tangible_reachability(self.build())
        kernel, sojourn = build_mrgp_kernels(graph)
        assert np.allclose(kernel, [[0, 1], [1, 0]])

    def test_sojourn_is_delay(self):
        graph = tangible_reachability(self.build())
        _, sojourn = build_mrgp_kernels(graph)
        a = next(i for i, m in enumerate(graph.markings) if m["A"] == 1)
        assert np.isclose(sojourn[a, a], 2.0)
        assert np.isclose(sojourn[1 - a, 1 - a], 3.0)

    def test_solution_time_fractions(self):
        graph = tangible_reachability(self.build())
        kernel, sojourn = build_mrgp_kernels(graph)
        result = solve_mrgp(kernel, sojourn)
        a = next(i for i, m in enumerate(graph.markings) if m["A"] == 1)
        assert np.isclose(result.pi[a], 0.4)


class TestPreemptedDeterministic:
    """Deterministic transition racing an exponential one.

    Token in place Race: deterministic d (delay tau) moves it to D,
    exponential e (rate lam) moves it to E; from D and E exponential
    transitions return it.  P(d wins) = exp(-lam*tau).
    """

    def build(self, tau=1.0, lam=0.7):
        builder = NetBuilder("race")
        builder.place("Race", tokens=1).place("D").place("E")
        builder.deterministic("d", delay=tau, inputs={"Race": 1}, outputs={"D": 1})
        builder.exponential("e", rate=lam, inputs={"Race": 1}, outputs={"E": 1})
        builder.exponential("dBack", rate=1.0, inputs={"D": 1}, outputs={"Race": 1})
        builder.exponential("eBack", rate=1.0, inputs={"E": 1}, outputs={"Race": 1})
        return builder.build()

    def test_kernel_race_probabilities(self):
        tau, lam = 1.0, 0.7
        graph = tangible_reachability(self.build(tau, lam))
        kernel, _ = build_mrgp_kernels(graph)
        race = next(i for i, m in enumerate(graph.markings) if m["Race"] == 1)
        d = next(i for i, m in enumerate(graph.markings) if m["D"] == 1)
        e = next(i for i, m in enumerate(graph.markings) if m["E"] == 1)
        assert math.isclose(kernel[race, e], 1 - math.exp(-lam * tau), rel_tol=1e-9)
        assert math.isclose(kernel[race, d], math.exp(-lam * tau), rel_tol=1e-9)

    def test_sojourn_truncated_mean(self):
        tau, lam = 1.0, 0.7
        graph = tangible_reachability(self.build(tau, lam))
        _, sojourn = build_mrgp_kernels(graph)
        race = next(i for i, m in enumerate(graph.markings) if m["Race"] == 1)
        # E[min(tau, Exp(lam))] = (1 - exp(-lam tau)) / lam
        expected = (1 - math.exp(-lam * tau)) / lam
        assert math.isclose(sojourn[race, race], expected, rel_tol=1e-9)

    def test_full_solution_matches_simulation_free_formula(self):
        """Renewal-reward hand calculation for the race model."""
        tau, lam = 1.0, 0.7
        graph = tangible_reachability(self.build(tau, lam))
        kernel, sojourn = build_mrgp_kernels(graph)
        result = solve_mrgp(kernel, sojourn)
        assert np.isclose(result.pi.sum(), 1.0)
        race = next(i for i, m in enumerate(graph.markings) if m["Race"] == 1)
        # fraction of time in Race: E[min] / (E[min] + 1)  (returns take 1.0 mean)
        e_min = (1 - math.exp(-lam * tau)) / lam
        assert math.isclose(result.pi[race], e_min / (e_min + 1.0), rel_tol=1e-9)


class TestUnsupportedShapes:
    def test_two_concurrent_deterministic_rejected(self):
        builder = NetBuilder("two-det")
        builder.place("A", tokens=1).place("B", tokens=1).place("C")
        builder.deterministic("d1", delay=1.0, inputs={"A": 1}, outputs={"C": 1})
        builder.deterministic("d2", delay=2.0, inputs={"B": 1}, outputs={"C": 1})
        builder.exponential("back", rate=1.0, inputs={"C": 2}, outputs={"A": 1, "B": 1})
        net = builder.build()
        graph = tangible_reachability(net)
        with pytest.raises(UnsupportedModelError, match="deterministic"):
            build_mrgp_kernels(graph)

    def test_absorbing_state_self_cycles(self):
        builder = NetBuilder("absorbing")
        builder.place("A", tokens=1).place("B").place("Sink")
        builder.deterministic("d", delay=1.0, inputs={"A": 1}, outputs={"B": 1})
        builder.exponential("e", rate=1.0, inputs={"B": 1}, outputs={"Sink": 1})
        net = builder.build()
        graph = tangible_reachability(net)
        kernel, sojourn = build_mrgp_kernels(graph)
        sink = next(i for i, m in enumerate(graph.markings) if m["Sink"] == 1)
        assert kernel[sink, sink] == 1.0
        result = solve_mrgp(kernel, sojourn)
        assert np.isclose(result.pi[sink], 1.0)
