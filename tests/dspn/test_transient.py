"""Tests for transient DSPN analysis."""

import numpy as np
import pytest

from repro.dspn import solve_steady_state, transient_rewards
from repro.errors import UnsupportedModelError


class TestTransientRewards:
    def test_starts_at_initial_reward(self, two_state_net):
        result = transient_rewards(two_state_net, lambda m: float(m["Up"]), [0.0])
        assert np.isclose(result.rewards[0], 1.0)

    def test_converges_to_steady_state(self, two_state_net):
        steady = solve_steady_state(two_state_net).expected_reward(
            lambda m: float(m["Up"])
        )
        result = transient_rewards(two_state_net, lambda m: float(m["Up"]), [10000.0])
        assert np.isclose(result.rewards[0], steady, atol=1e-9)

    def test_monotone_decay_from_fresh_state(self, two_state_net):
        times = [0.0, 10.0, 50.0, 200.0, 1000.0]
        result = transient_rewards(two_state_net, lambda m: float(m["Up"]), times)
        rewards = result.rewards
        assert all(a >= b - 1e-12 for a, b in zip(rewards, rewards[1:]))

    def test_distributions_rows_normalized(self, two_state_net):
        result = transient_rewards(
            two_state_net, lambda m: float(m["Up"]), [0.5, 5.0]
        )
        assert np.allclose(result.distributions.sum(axis=1), 1.0)

    def test_deterministic_net_rejected(self, clocked_net):
        with pytest.raises(UnsupportedModelError):
            transient_rewards(clocked_net, lambda m: 1.0, [1.0])

    def test_vanishing_initial_marking_resolved(self, immediate_chain_net):
        result = transient_rewards(
            immediate_chain_net, lambda m: float(m["C"]), [0.0]
        )
        # A=1 resolves instantly to C=1
        assert np.isclose(result.rewards[0], 1.0)
