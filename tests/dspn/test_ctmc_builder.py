"""Tests for building CTMCs from tangible graphs."""

import numpy as np
import pytest

from repro.dspn.ctmc_builder import build_ctmc
from repro.errors import UnsupportedModelError
from repro.petri import NetBuilder
from repro.statespace import tangible_reachability


class TestBuildCTMC:
    def test_two_state_generator(self, two_state_net):
        graph = tangible_reachability(two_state_net)
        ctmc = build_ctmc(graph)
        up = next(i for i, m in enumerate(graph.markings) if m["Up"] == 1)
        down = 1 - up
        assert np.isclose(ctmc.generator[up, down], 0.01)
        assert np.isclose(ctmc.generator[down, up], 0.5)
        assert np.allclose(ctmc.generator.sum(axis=1), 0.0)

    def test_rejects_deterministic(self, clocked_net):
        graph = tangible_reachability(clocked_net)
        with pytest.raises(UnsupportedModelError):
            build_ctmc(graph)

    def test_vanishing_split_spreads_rate(self):
        builder = NetBuilder("split")
        builder.place("A", tokens=1).place("V").place("B").place("C")
        builder.exponential("go", rate=3.0, inputs={"A": 1}, outputs={"V": 1})
        builder.immediate("vb", weight=2.0, inputs={"V": 1}, outputs={"B": 1})
        builder.immediate("vc", weight=1.0, inputs={"V": 1}, outputs={"C": 1})
        builder.exponential("bBack", rate=1.0, inputs={"B": 1}, outputs={"A": 1})
        builder.exponential("cBack", rate=1.0, inputs={"C": 1}, outputs={"A": 1})
        net = builder.build()
        graph = tangible_reachability(net)
        ctmc = build_ctmc(graph)
        a = next(i for i, m in enumerate(graph.markings) if m["A"] == 1)
        b = next(i for i, m in enumerate(graph.markings) if m["B"] == 1)
        c = next(i for i, m in enumerate(graph.markings) if m["C"] == 1)
        assert np.isclose(ctmc.generator[a, b], 2.0)
        assert np.isclose(ctmc.generator[a, c], 1.0)

    def test_invisible_self_loop_dropped(self):
        builder = NetBuilder("selfloop")
        builder.place("A", tokens=1).place("B")
        # transition that returns the token to A (self-loop in state space)
        builder.exponential("noop", rate=5.0, inputs={"A": 1}, outputs={"A": 1})
        builder.exponential("move", rate=1.0, inputs={"A": 1}, outputs={"B": 1})
        builder.exponential("back", rate=1.0, inputs={"B": 1}, outputs={"A": 1})
        net = builder.build()
        graph = tangible_reachability(net)
        ctmc = build_ctmc(graph)
        # the self-loop must not contribute to the exit rate
        a = next(i for i, m in enumerate(graph.markings) if m["A"] == 1)
        assert np.isclose(-ctmc.generator[a, a], 1.0)
