"""Tests for reward helpers."""

import numpy as np

from repro.dspn.rewards import indicator, reward_vector
from repro.petri.marking import Marking

INDEX = {"A": 0, "B": 1}


def markings():
    return [
        Marking.from_dict(INDEX, {"A": 1}),
        Marking.from_dict(INDEX, {"B": 2}),
    ]


class TestRewardVector:
    def test_evaluates_each_marking(self):
        vector = reward_vector(markings(), lambda m: m["A"] + 10 * m["B"])
        assert np.allclose(vector, [1.0, 20.0])

    def test_empty(self):
        assert reward_vector([], lambda m: 1.0).shape == (0,)


class TestIndicator:
    def test_zero_one(self):
        reward = indicator(lambda m: m["B"] > 0)
        values = [reward(m) for m in markings()]
        assert values == [0.0, 1.0]
