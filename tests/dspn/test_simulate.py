"""Tests for the DSPN discrete-event simulator."""

import numpy as np
import pytest

from repro.dspn import simulate, solve_steady_state
from repro.errors import SimulationError
from repro.petri import NetBuilder


class TestArguments:
    def test_rejects_bad_horizon(self, two_state_net):
        with pytest.raises(SimulationError):
            simulate(two_state_net, reward=lambda m: 1.0, horizon=0.0)

    def test_rejects_single_replication(self, two_state_net):
        with pytest.raises(SimulationError):
            simulate(two_state_net, reward=lambda m: 1.0, horizon=10, replications=1)

    def test_rejects_negative_warmup(self, two_state_net):
        with pytest.raises(SimulationError):
            simulate(two_state_net, reward=lambda m: 1.0, horizon=10, warmup=-1)


class TestAgainstAnalytic:
    def test_two_state_availability(self, two_state_net):
        analytic = solve_steady_state(two_state_net).expected_reward(
            lambda m: float(m["Up"])
        )
        estimate = simulate(
            two_state_net,
            reward=lambda m: float(m["Up"]),
            horizon=20000.0,
            warmup=500.0,
            replications=6,
            seed=1,
        )
        assert estimate.covers(analytic) or abs(estimate.mean - analytic) < 0.01

    def test_clocked_net_deterministic_reset(self, clocked_net):
        analytic = solve_steady_state(clocked_net).expected_reward(
            lambda m: float(m["Up"])
        )
        estimate = simulate(
            clocked_net,
            reward=lambda m: float(m["Up"]),
            horizon=20000.0,
            warmup=200.0,
            replications=6,
            seed=2,
        )
        assert abs(estimate.mean - analytic) < 0.02

    def test_immediate_resolution(self, immediate_chain_net):
        estimate = simulate(
            immediate_chain_net,
            reward=lambda m: float(m["C"]),
            horizon=5000.0,
            replications=4,
            seed=3,
        )
        # CTMC between C and D: pi(C) = 2/3
        assert abs(estimate.mean - 2 / 3) < 0.03


class TestEstimate:
    def test_interval_symmetric(self, two_state_net):
        estimate = simulate(
            two_state_net,
            reward=lambda m: float(m["Up"]),
            horizon=1000.0,
            replications=5,
            seed=4,
        )
        low, high = estimate.interval
        assert np.isclose((low + high) / 2, estimate.mean)
        assert estimate.covers(estimate.mean)

    def test_reproducible_with_seed(self, two_state_net):
        kwargs = dict(
            reward=lambda m: float(m["Up"]), horizon=500.0, replications=3, seed=99
        )
        first = simulate(two_state_net, **kwargs)
        second = simulate(two_state_net, **kwargs)
        assert first.mean == second.mean


class TestAbsorbingBehaviour:
    def test_dead_marking_accumulates_to_horizon(self):
        builder = NetBuilder("absorbing")
        builder.place("A", tokens=1).place("B")
        builder.exponential("t", rate=100.0, inputs={"A": 1}, outputs={"B": 1})
        net = builder.build()
        estimate = simulate(
            net, reward=lambda m: float(m["B"]), horizon=100.0,
            replications=3, seed=5,
        )
        # absorbed almost immediately; reward ~ 1 for the full horizon
        assert estimate.mean > 0.97
