"""Tests for the steady-state dispatch and result object."""

import numpy as np
import pytest

from repro.dspn import solve_steady_state
from repro.dspn.steady_state import (
    METHODS,
    SPARSE_STATE_THRESHOLD,
    route_exponential,
    routing_policy,
)
from repro.errors import ParameterError, UnsupportedModelError
from repro.statespace import tangible_reachability


class TestDispatch:
    def test_exponential_net_uses_ctmc(self, two_state_net):
        result = solve_steady_state(two_state_net)
        assert result.method == "ctmc"

    def test_deterministic_net_uses_mrgp(self, clocked_net):
        result = solve_steady_state(clocked_net)
        assert result.method == "mrgp"

    def test_sparse_method_solves_exponential_nets(self, two_state_net):
        result = solve_steady_state(two_state_net, method="sparse", use_cache=False)
        assert result.method == "sparse"
        assert result.solver_info is not None
        assert np.isclose(result.pi.sum(), 1.0)

    def test_sparse_method_rejects_deterministic_nets(self, clocked_net):
        with pytest.raises(UnsupportedModelError, match="sparse route"):
            solve_steady_state(clocked_net, method="sparse", use_cache=False)

    def test_dense_routes_carry_no_solver_record(self, two_state_net):
        result = solve_steady_state(two_state_net, use_cache=False)
        assert result.solver_info is None


class TestMethodValidation:
    def test_unknown_method_rejected_eagerly_with_sorted_list(self, two_state_net):
        with pytest.raises(
            ParameterError,
            match=r"unknown method 'simplex'; valid methods: auto, ctmc, mrgp, sparse",
        ):
            solve_steady_state(two_state_net, method="simplex")

    def test_rejection_happens_before_any_state_space_work(self):
        # an un-buildable object would explode inside reachability; the
        # eager check must fire first
        with pytest.raises(ParameterError, match="unknown method"):
            solve_steady_state(object(), method="nope")

    def test_methods_tuple_is_sorted_in_the_error(self, two_state_net):
        assert sorted(METHODS) == ["auto", "ctmc", "mrgp", "sparse"]


class TestAutoRouting:
    def test_small_graphs_route_dense(self, two_state_net):
        graph = tangible_reachability(two_state_net)
        decision = route_exponential(graph)
        assert decision["route"] == "ctmc"
        assert decision["states"] == graph.n_states
        assert decision["state_threshold"] == SPARSE_STATE_THRESHOLD

    def test_policy_snapshot_names_both_thresholds(self):
        policy = routing_policy()
        assert policy["sparse_state_threshold"] == SPARSE_STATE_THRESHOLD
        assert 0.0 < policy["sparse_density_ceiling"] < 1.0


class TestInvariant:
    def test_pi_sums_to_one(self, two_state_net, clocked_net):
        for net in (two_state_net, clocked_net):
            result = solve_steady_state(net)
            assert np.isclose(result.pi.sum(), 1.0)


class TestTwoStateValues:
    def test_availability(self, two_state_net):
        result = solve_steady_state(two_state_net)
        up = result.probability(lambda m: m["Up"] == 1)
        # fail 0.01, repair 0.5 -> availability = 0.5/(0.51)
        assert np.isclose(up, 0.5 / 0.51)


class TestClockedValues:
    def test_clocked_net_up_fraction(self, clocked_net):
        """Token decays at rate 0.1; deterministic reset after 2 s in Down.

        Cycle: time in Up ~ Exp(0.1) (mean 10), then exactly 2 in Down.
        Long-run up fraction = 10 / 12.
        """
        result = solve_steady_state(clocked_net)
        up = result.probability(lambda m: m["Up"] == 1)
        assert np.isclose(up, 10.0 / 12.0, rtol=1e-9)


class TestResultHelpers:
    def test_expected_reward(self, two_state_net):
        result = solve_steady_state(two_state_net)
        availability = result.expected_reward(lambda m: float(m["Up"]))
        assert np.isclose(availability, 0.5 / 0.51)

    def test_distribution_sorted(self, two_state_net):
        pairs = solve_steady_state(two_state_net).distribution()
        probabilities = [p for _, p in pairs]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_probability_of_everything_is_one(self, clocked_net):
        result = solve_steady_state(clocked_net)
        assert np.isclose(result.probability(lambda m: True), 1.0)
