"""Tests for the steady-state dispatch and result object."""

import numpy as np

from repro.dspn import solve_steady_state


class TestDispatch:
    def test_exponential_net_uses_ctmc(self, two_state_net):
        result = solve_steady_state(two_state_net)
        assert result.method == "ctmc"

    def test_deterministic_net_uses_mrgp(self, clocked_net):
        result = solve_steady_state(clocked_net)
        assert result.method == "mrgp"

    def test_pi_sums_to_one(self, two_state_net, clocked_net):
        for net in (two_state_net, clocked_net):
            result = solve_steady_state(net)
            assert np.isclose(result.pi.sum(), 1.0)


class TestTwoStateValues:
    def test_availability(self, two_state_net):
        result = solve_steady_state(two_state_net)
        up = result.probability(lambda m: m["Up"] == 1)
        # fail 0.01, repair 0.5 -> availability = 0.5/(0.51)
        assert np.isclose(up, 0.5 / 0.51)


class TestClockedValues:
    def test_clocked_net_up_fraction(self, clocked_net):
        """Token decays at rate 0.1; deterministic reset after 2 s in Down.

        Cycle: time in Up ~ Exp(0.1) (mean 10), then exactly 2 in Down.
        Long-run up fraction = 10 / 12.
        """
        result = solve_steady_state(clocked_net)
        up = result.probability(lambda m: m["Up"] == 1)
        assert np.isclose(up, 10.0 / 12.0, rtol=1e-9)


class TestResultHelpers:
    def test_expected_reward(self, two_state_net):
        result = solve_steady_state(two_state_net)
        availability = result.expected_reward(lambda m: float(m["Up"]))
        assert np.isclose(availability, 0.5 / 0.51)

    def test_distribution_sorted(self, two_state_net):
        pairs = solve_steady_state(two_state_net).distribution()
        probabilities = [p for _, p in pairs]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_probability_of_everything_is_one(self, clocked_net):
        result = solve_steady_state(clocked_net)
        assert np.isclose(result.probability(lambda m: True), 1.0)
