"""The dense-vs-sparse differential harness.

Every net the experiment registry solves must produce the same
stationary distribution (and the same Eq. 1 expected reliability) on
the dense and the sparse route, to 1e-9 — enumerated over the registry
itself so a newly registered experiment is pinned the moment it exists.
Deterministic nets must be rejected identically by both CTMC-class
routes.  Hypothesis then widens the net beyond the registry: random
DSPN families (perception shapes with random rates, and random fleet
sizings) must agree on both routes too.
"""

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.dspn.ctmc_builder import build_ctmc
from repro.dspn.sparse_builder import sparse_generator
from repro.dspn.steady_state import solve_steady_state
from repro.engine import cache_override
from repro.errors import UnsupportedModelError
from repro.experiments.registry import EXPERIMENT_IDS
from repro.perception.fleet import FleetParameters, build_fleet_net
from repro.perception.no_rejuvenation import build_no_rejuvenation_net
from repro.perception.parameters import PerceptionParameters
from repro.perception.statemap import module_counts
from repro.statespace import tangible_reachability
from repro.verify.targets import experiment_targets

AGREEMENT = 1e-9


def _reward_function(target):
    reliability = target.reliability()

    def reward(marking):
        counts = module_counts(marking)
        return float(
            reliability(counts.healthy, counts.compromised, counts.unavailable)
        )

    return reward


class TestRegistryDifferential:
    """Dense vs sparse over every net of every registered experiment."""

    @pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
    def test_routes_agree_on_pi_and_expected_reward(self, experiment_id):
        for target in experiment_targets(experiment_id):
            net = target.build()
            graph = tangible_reachability(net, max_states=target.max_states)
            reward = _reward_function(target)
            with cache_override(enabled=False):
                if graph.has_deterministic():
                    # both CTMC-class routes must refuse identically
                    with pytest.raises(UnsupportedModelError):
                        solve_steady_state(net, method="ctmc")
                    with pytest.raises(UnsupportedModelError):
                        solve_steady_state(net, method="sparse")
                    continue
                dense = solve_steady_state(net, method="ctmc")
                sparse = solve_steady_state(net, method="sparse")
            assert sparse.method == "sparse"
            assert sparse.solver_info is not None
            np.testing.assert_allclose(
                sparse.pi,
                dense.pi,
                atol=AGREEMENT,
                rtol=0.0,
                err_msg=f"{experiment_id}/{target.name}: pi disagrees",
            )
            assert sparse.expected_reward(reward) == pytest.approx(
                dense.expected_reward(reward), abs=AGREEMENT
            ), f"{experiment_id}/{target.name}: E[R] disagrees"

    @pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
    def test_sparse_builder_matches_dense_generator(self, experiment_id):
        for target in experiment_targets(experiment_id):
            graph = tangible_reachability(
                target.build(), max_states=target.max_states
            )
            if graph.has_deterministic():
                continue
            dense = build_ctmc(graph).generator
            sparse = sparse_generator(graph)
            assert sparse.shape == dense.shape
            np.testing.assert_allclose(
                sparse.toarray(), dense, atol=1e-14, rtol=0.0
            )


class TestFleetDifferential:
    """The fleet product nets agree across routes at every tested size."""

    @pytest.mark.parametrize(
        "parameters",
        [
            pytest.param(FleetParameters.nv15_defaults(), id="nv15"),
            pytest.param(
                FleetParameters.nv15_defaults(crews=4, clock_slots=4),
                id="nv15-4crew",
            ),
        ],
    )
    def test_fleet_routes_agree(self, parameters):
        net = build_fleet_net(parameters)
        with cache_override(enabled=False):
            dense = solve_steady_state(net, method="ctmc")
            sparse = solve_steady_state(net, method="sparse")
        np.testing.assert_allclose(sparse.pi, dense.pi, atol=AGREEMENT, rtol=0.0)
        reward = lambda m: float(module_counts(m).healthy)  # noqa: E731
        # reward magnitudes reach n_modules here, so the E[R] bound is
        # looser than the per-entry pi bound
        assert sparse.expected_reward(reward) == pytest.approx(
            dense.expected_reward(reward), abs=1e-7
        )


perception_shapes = st.builds(
    PerceptionParameters,
    n_modules=st.integers(min_value=4, max_value=12),
    f=st.just(1),
    rejuvenation=st.just(False),
    mttc=st.floats(min_value=10.0, max_value=5000.0),
    mttf=st.floats(min_value=10.0, max_value=5000.0),
    mttr=st.floats(min_value=0.5, max_value=100.0),
)

fleet_shapes = st.builds(
    FleetParameters,
    perception=st.builds(
        PerceptionParameters,
        n_modules=st.integers(min_value=7, max_value=10),
        f=st.just(1),
        r=st.just(1),
        rejuvenation=st.just(True),
        mttc=st.floats(min_value=100.0, max_value=3000.0),
        rejuvenation_interval=st.floats(min_value=60.0, max_value=1200.0),
    ),
    crews=st.integers(min_value=1, max_value=3),
    clock_slots=st.integers(min_value=1, max_value=3),
)


class TestRandomFamilies:
    @settings(max_examples=25, deadline=None)
    @given(parameters=perception_shapes)
    # pinned: the Krylov solution's round-off negatives used to be
    # judged on an absolute scale and rejected this well-posed net
    @example(
        parameters=PerceptionParameters(
            n_modules=10,
            f=1,
            rejuvenation=False,
            mttc=10.0,
            mttf=297.0,
            mttr=1.0,
        )
    )
    def test_random_perception_nets_agree(self, parameters):
        net = build_no_rejuvenation_net(parameters)
        with cache_override(enabled=False):
            dense = solve_steady_state(net, method="ctmc")
            sparse = solve_steady_state(net, method="sparse")
        # random rates reach the edge of the solver's certified 1e-8
        # relative-residual bar, so large entries get the matching
        # relative allowance on top of the absolute one
        np.testing.assert_allclose(
            sparse.pi, dense.pi, atol=AGREEMENT, rtol=1e-8
        )

    @settings(max_examples=10, deadline=None)
    @given(parameters=fleet_shapes)
    # pinned: one entry of magnitude 0.6 lands ~1e-9 from the dense
    # value — inside the certified relative bar, outside a bare atol
    @example(
        parameters=FleetParameters(
            perception=PerceptionParameters(
                n_modules=8,
                f=1,
                r=1,
                rejuvenation=True,
                mttc=100.0,
                rejuvenation_interval=322.0,
            ),
            crews=3,
            clock_slots=3,
        )
    )
    def test_random_fleet_nets_agree(self, parameters):
        net = build_fleet_net(parameters)
        with cache_override(enabled=False):
            dense = solve_steady_state(net, method="ctmc")
            sparse = solve_steady_state(net, method="sparse")
        np.testing.assert_allclose(
            sparse.pi, dense.pi, atol=AGREEMENT, rtol=1e-8
        )
