"""Tests for the MRGP renewal-theorem solver."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.markov.mrgp import solve_mrgp


class TestSolveMRGP:
    def test_degenerate_single_state(self):
        result = solve_mrgp(np.array([[1.0]]), np.array([[2.0]]))
        assert np.allclose(result.pi, [1.0])
        assert result.expected_cycle_length == 2.0

    def test_alternating_renewal(self):
        """Two regeneration states visited alternately with different
        sojourn times: pi proportional to time spent."""
        kernel = np.array([[0.0, 1.0], [1.0, 0.0]])
        sojourn = np.array([[3.0, 0.0], [0.0, 1.0]])
        result = solve_mrgp(kernel, sojourn)
        assert np.allclose(result.phi, [0.5, 0.5])
        assert np.allclose(result.pi, [0.75, 0.25])
        assert np.isclose(result.expected_cycle_length, 2.0)

    def test_reduces_to_ctmc_embedded_form(self):
        """Feeding a CTMC's jump chain + mean sojourns reproduces its pi."""
        # CTMC: up->down rate 1, down->up rate 4: pi=(0.8, 0.2)
        kernel = np.array([[0.0, 1.0], [1.0, 0.0]])
        sojourn = np.array([[1.0, 0.0], [0.0, 0.25]])
        result = solve_mrgp(kernel, sojourn)
        assert np.allclose(result.pi, [0.8, 0.2])

    def test_sojourn_in_other_states(self):
        """U may spread time across non-start states (subordinated visits)."""
        kernel = np.array([[0.0, 1.0], [1.0, 0.0]])
        sojourn = np.array([[1.0, 1.0], [0.0, 2.0]])
        result = solve_mrgp(kernel, sojourn)
        # per double-cycle: state0 time 1, state1 time 3
        assert np.allclose(result.pi, [0.25, 0.75])

    def test_rejects_non_square_kernel(self):
        with pytest.raises(SolverError):
            solve_mrgp(np.zeros((2, 3)), np.zeros((2, 2)))

    def test_rejects_row_mismatch(self):
        with pytest.raises(SolverError):
            solve_mrgp(np.eye(2), np.zeros((3, 2)))

    def test_rejects_negative_sojourn(self):
        with pytest.raises(SolverError, match="negative"):
            solve_mrgp(np.eye(2), np.array([[1.0, -0.5], [0.0, 1.0]]))

    def test_rejects_zero_cycle_length(self):
        kernel = np.array([[0.0, 1.0], [1.0, 0.0]])
        sojourn = np.array([[0.0, 0.0], [0.0, 1.0]])
        with pytest.raises(SolverError, match="cycle"):
            solve_mrgp(kernel, sojourn)

    def test_rejects_non_stochastic_kernel(self):
        with pytest.raises(SolverError):
            solve_mrgp(np.array([[0.5, 0.4], [1.0, 0.0]]), np.eye(2))
