"""Tests for repro.markov.linear."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.markov.linear import (
    check_generator,
    check_stochastic,
    normalize_distribution,
    solve_stationary,
    solve_stationary_stochastic,
)


class TestNormalizeDistribution:
    def test_normalizes(self):
        result = normalize_distribution(np.array([1.0, 3.0]), what="x")
        assert np.allclose(result, [0.25, 0.75])

    def test_clips_tiny_negatives(self):
        result = normalize_distribution(np.array([1.0, -1e-12]), what="x")
        assert result[1] == 0.0

    def test_rejects_large_negatives(self):
        with pytest.raises(SolverError, match="negative"):
            normalize_distribution(np.array([1.0, -0.5]), what="x")

    def test_rejects_zero_sum(self):
        with pytest.raises(SolverError):
            normalize_distribution(np.array([0.0, 0.0]), what="x")


class TestSolveStationary:
    def test_two_state_balance(self):
        # up/down with fail 1, repair 4  ->  pi = (0.8, 0.2)
        generator = np.array([[-1.0, 1.0], [4.0, -4.0]])
        pi = solve_stationary(generator, what="test")
        assert np.allclose(pi, [0.8, 0.2])

    def test_rejects_rectangular(self):
        with pytest.raises(SolverError):
            solve_stationary(np.zeros((2, 3)), what="test")

    def test_reducible_chain_rejected(self):
        # two disconnected recurrent classes -> stationary not unique
        generator = np.array(
            [
                [-1.0, 1.0, 0.0, 0.0],
                [1.0, -1.0, 0.0, 0.0],
                [0.0, 0.0, -2.0, 2.0],
                [0.0, 0.0, 2.0, -2.0],
            ]
        )
        with pytest.raises(SolverError, match="reducible"):
            solve_stationary(generator, what="test")

    def test_stochastic_stationary(self):
        matrix = np.array([[0.5, 0.5], [0.25, 0.75]])
        pi = solve_stationary_stochastic(matrix, what="test")
        assert np.allclose(pi, pi @ matrix)
        assert np.isclose(pi.sum(), 1.0)


class TestCheckGenerator:
    def test_accepts_valid(self):
        check_generator(np.array([[-1.0, 1.0], [2.0, -2.0]]), what="q")

    def test_rejects_negative_offdiagonal(self):
        with pytest.raises(SolverError, match="off-diagonal"):
            check_generator(np.array([[0.5, -0.5], [0.0, 0.0]]), what="q")

    def test_rejects_nonzero_rowsums(self):
        with pytest.raises(SolverError, match="sum to zero"):
            check_generator(np.array([[-1.0, 2.0], [0.0, 0.0]]), what="q")


class TestCheckStochastic:
    def test_accepts_stochastic(self):
        check_stochastic(np.array([[0.3, 0.7], [1.0, 0.0]]), what="p")

    def test_rejects_bad_rowsum(self):
        with pytest.raises(SolverError):
            check_stochastic(np.array([[0.3, 0.3], [1.0, 0.0]]), what="p")

    def test_substochastic_mode(self):
        check_stochastic(
            np.array([[0.3, 0.3], [0.0, 0.0]]), what="p", substochastic=True
        )

    def test_rejects_negative(self):
        with pytest.raises(SolverError, match="negative"):
            check_stochastic(np.array([[-0.1, 1.1], [1.0, 0.0]]), what="p")
