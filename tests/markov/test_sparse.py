"""Unit tests for the sparse CTMC numerics (repro.markov.sparse)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ParameterError, SolverError
from repro.markov.linear import solve_stationary
from repro.markov.sparse import (
    SPARSE_SOLVERS,
    SparseSolveInfo,
    check_sparse_generator,
    recurrent_states,
    stationary_distribution_sparse,
    transient_distribution_sparse,
)
from repro.markov.uniformization import transient_distribution


def random_ergodic_generator(n, *, seed, out_degree=4):
    """A dense irreducible generator (a random graph plus a ring)."""
    rng = np.random.default_rng(seed)
    generator = np.zeros((n, n))
    for i in range(n):
        others = [j for j in range(n) if j != i]
        targets = rng.choice(others, size=min(out_degree, n - 1), replace=False)
        generator[i, targets] = rng.uniform(0.1, 2.0, size=len(targets))
        generator[i, (i + 1) % n] += 0.5  # the ring forces irreducibility
    np.fill_diagonal(generator, -generator.sum(axis=1))
    return generator


def reducible_generator():
    """Two disconnected 2-cycles: two recurrent classes, no unique pi."""
    return np.array(
        [
            [-1.0, 1.0, 0.0, 0.0],
            [1.0, -1.0, 0.0, 0.0],
            [0.0, 0.0, -2.0, 2.0],
            [0.0, 0.0, 2.0, -2.0],
        ]
    )


class TestCheckSparseGenerator:
    def test_rejects_dense_arrays(self):
        with pytest.raises(SolverError, match="expected a scipy.sparse"):
            check_sparse_generator(np.zeros((2, 2)), what="test")

    def test_rejects_nonzero_row_sums(self):
        matrix = sp.csr_array(np.array([[-1.0, 0.5], [1.0, -1.0]]))
        with pytest.raises(SolverError, match="do not sum to zero"):
            check_sparse_generator(matrix, what="test")

    def test_rejects_negative_off_diagonal(self):
        matrix = sp.csr_array(np.array([[1.0, -1.0], [1.0, -1.0]]))
        with pytest.raises(SolverError, match="negative off-diagonal"):
            check_sparse_generator(matrix, what="test")

    def test_rejects_non_square(self):
        matrix = sp.csr_array(np.zeros((2, 3)))
        with pytest.raises(SolverError, match="must be square"):
            check_sparse_generator(matrix, what="test")

    def test_accepts_any_sparse_format(self):
        generator = sp.coo_array(random_ergodic_generator(5, seed=1))
        checked = check_sparse_generator(generator, what="test")
        assert isinstance(checked, sp.csr_array)


class TestRecurrentStates:
    def test_irreducible_chain_is_fully_recurrent(self):
        generator = sp.csr_array(random_ergodic_generator(10, seed=2))
        assert recurrent_states(generator, what="test").all()

    def test_transient_states_are_excluded(self):
        # state 0 drains into the 1<->2 cycle and is never revisited
        generator = sp.csr_array(
            np.array([[-1.0, 1.0, 0.0], [0.0, -1.0, 1.0], [0.0, 1.0, -1.0]])
        )
        mask = recurrent_states(generator, what="test")
        assert mask.tolist() == [False, True, True]

    def test_multiple_recurrent_classes_raise(self):
        generator = sp.csr_array(reducible_generator())
        with pytest.raises(SolverError, match="not unique"):
            recurrent_states(generator, what="test")


class TestStationarySparse:
    @pytest.mark.parametrize("solver", SPARSE_SOLVERS)
    def test_agrees_with_dense_route(self, solver):
        dense = random_ergodic_generator(120, seed=3)
        expected = solve_stationary(dense, what="dense")
        pi, info = stationary_distribution_sparse(
            sp.csr_array(dense), solver=solver, what="sparse"
        )
        np.testing.assert_allclose(pi, expected, atol=1e-9, rtol=0.0)
        assert info.solver == solver
        assert info.residual <= info.tolerance
        assert info.n_states == 120

    def test_unknown_solver_rejected_eagerly(self):
        generator = sp.csr_array(random_ergodic_generator(5, seed=4))
        with pytest.raises(
            ParameterError, match=r"valid solvers: bicgstab, gmres, power"
        ):
            stationary_distribution_sparse(generator, solver="qr")

    def test_single_state_chain(self):
        pi, info = stationary_distribution_sparse(
            sp.csr_array(np.zeros((1, 1))), what="test"
        )
        assert pi.tolist() == [1.0]
        assert info.solver == "direct"

    def test_reducible_raises_the_dense_error(self):
        sparse_error = dense_error = None
        try:
            solve_stationary(reducible_generator(), what="test")
        except SolverError as error:
            dense_error = str(error)
        try:
            stationary_distribution_sparse(
                sp.csr_array(reducible_generator()), what="test"
            )
        except SolverError as error:
            sparse_error = str(error)
        assert dense_error is not None
        assert sparse_error == dense_error

    def test_transient_states_get_zero_mass(self):
        generator = np.array(
            [[-1.0, 1.0, 0.0], [0.0, -1.0, 1.0], [0.0, 1.0, -1.0]]
        )
        pi, _ = stationary_distribution_sparse(sp.csr_array(generator), what="test")
        expected = solve_stationary(generator, what="test")
        np.testing.assert_allclose(pi, expected, atol=1e-10)
        assert pi[0] == 0.0

    def test_info_dict_roundtrip(self):
        generator = sp.csr_array(random_ergodic_generator(30, seed=5))
        _, info = stationary_distribution_sparse(generator, what="test")
        record = info.as_dict()
        assert record["solver"] == "gmres"
        assert set(record) == {
            "solver",
            "n_states",
            "nnz",
            "iterations",
            "refinements",
            "residual",
            "tolerance",
            "preconditioner",
            "reordering",
            "fallback",
        }
        assert SparseSolveInfo(**record) == info


class TestTransientSparse:
    def test_agrees_with_dense_uniformization(self):
        dense = random_ergodic_generator(60, seed=6)
        initial = np.zeros(60)
        initial[0] = 1.0
        for time in (0.5, 3.0, 25.0):
            expected = transient_distribution(dense, initial, time)
            actual = transient_distribution_sparse(
                sp.csr_array(dense), initial, time
            )
            np.testing.assert_allclose(actual, expected, atol=1e-11, rtol=0.0)

    def test_time_zero_returns_initial(self):
        generator = sp.csr_array(random_ergodic_generator(5, seed=7))
        initial = np.array([0.2, 0.2, 0.2, 0.2, 0.2])
        out = transient_distribution_sparse(generator, initial, 0.0)
        np.testing.assert_array_equal(out, initial)
        assert out is not initial

    def test_negative_time_rejected(self):
        generator = sp.csr_array(random_ergodic_generator(5, seed=8))
        with pytest.raises(SolverError, match="time must be >= 0"):
            transient_distribution_sparse(generator, np.ones(5) / 5, -1.0)
