"""Tests for the DTMC class."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.markov.dtmc import DTMC


class TestStationary:
    def test_two_state(self):
        chain = DTMC(np.array([[0.9, 0.1], [0.5, 0.5]]))
        pi = chain.stationary_distribution()
        assert np.allclose(pi, pi @ chain.matrix)
        # balance: pi0 * 0.1 = pi1 * 0.5  ->  pi = (5/6, 1/6)
        assert np.allclose(pi, [5 / 6, 1 / 6])

    def test_rejects_non_stochastic(self):
        with pytest.raises(SolverError):
            DTMC(np.array([[0.9, 0.2], [0.5, 0.5]]))

    def test_label_mismatch(self):
        with pytest.raises(SolverError):
            DTMC(np.eye(2), states=["a"])


class TestStep:
    def test_one_step(self):
        chain = DTMC(np.array([[0.0, 1.0], [1.0, 0.0]]))
        assert np.allclose(chain.step([1.0, 0.0]), [0.0, 1.0])

    def test_multiple_steps(self):
        chain = DTMC(np.array([[0.0, 1.0], [1.0, 0.0]]))
        assert np.allclose(chain.step([1.0, 0.0], n=2), [1.0, 0.0])

    def test_zero_steps_identity(self):
        chain = DTMC(np.eye(2))
        assert np.allclose(chain.step([0.3, 0.7], n=0), [0.3, 0.7])

    def test_negative_steps_rejected(self):
        with pytest.raises(SolverError):
            DTMC(np.eye(2)).step([1.0, 0.0], n=-1)


class TestAbsorption:
    def test_gamblers_ruin(self):
        # states 0(absorb), 1, 2, 3(absorb); fair coin
        matrix = np.array(
            [
                [1.0, 0.0, 0.0, 0.0],
                [0.5, 0.0, 0.5, 0.0],
                [0.0, 0.5, 0.0, 0.5],
                [0.0, 0.0, 0.0, 1.0],
            ]
        )
        chain = DTMC(matrix, states=[0, 1, 2, 3])
        absorbed = chain.absorption_probabilities([0, 3])
        # from state 1: ruin 2/3, win 1/3
        assert np.allclose(absorbed[0], [2 / 3, 1 / 3])
        assert np.allclose(absorbed[1], [1 / 3, 2 / 3])

    def test_rows_sum_to_one(self):
        matrix = np.array(
            [
                [1.0, 0.0, 0.0],
                [0.2, 0.3, 0.5],
                [0.0, 0.0, 1.0],
            ]
        )
        chain = DTMC(matrix, states=["a", "b", "c"])
        absorbed = chain.absorption_probabilities(["a", "c"])
        assert np.allclose(absorbed.sum(axis=1), 1.0)
