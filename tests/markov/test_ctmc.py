"""Tests for the CTMC class."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.markov.ctmc import CTMC


def birth_death():
    """0 <-> 1 <-> 2 birth-death chain with birth 1, death 2."""
    generator = np.array(
        [
            [-1.0, 1.0, 0.0],
            [2.0, -3.0, 1.0],
            [0.0, 2.0, -2.0],
        ]
    )
    return CTMC(generator, states=["empty", "one", "two"])


class TestConstruction:
    def test_from_rates(self):
        chain = CTMC.from_rates(["u", "d"], {("u", "d"): 1.0, ("d", "u"): 4.0})
        assert np.allclose(chain.stationary_distribution(), [0.8, 0.2])

    def test_from_rates_rejects_self_loop(self):
        with pytest.raises(SolverError, match="self-loop"):
            CTMC.from_rates(["a"], {("a", "a"): 1.0})

    def test_from_rates_rejects_negative(self):
        with pytest.raises(SolverError):
            CTMC.from_rates(["a", "b"], {("a", "b"): -1.0})

    def test_label_count_mismatch(self):
        with pytest.raises(SolverError):
            CTMC(np.zeros((2, 2)), states=["only-one"])

    def test_index_of(self):
        chain = birth_death()
        assert chain.index_of("one") == 1


class TestStationary:
    def test_detailed_balance(self):
        chain = birth_death()
        pi = chain.stationary_distribution()
        # birth-death: pi_{i+1} = pi_i * birth/death
        assert np.isclose(pi[1] / pi[0], 0.5)
        assert np.isclose(pi[2] / pi[1], 0.5)
        assert np.isclose(pi.sum(), 1.0)

    def test_cached(self):
        chain = birth_death()
        assert chain.stationary_distribution() is chain.stationary_distribution()

    def test_expected_reward(self):
        chain = birth_death()
        pi = chain.stationary_distribution()
        rewards = [0.0, 1.0, 2.0]
        assert np.isclose(chain.expected_reward(rewards), pi[1] + 2 * pi[2])

    def test_expected_reward_shape_check(self):
        with pytest.raises(SolverError):
            birth_death().expected_reward([1.0])


class TestTransient:
    def test_time_zero_returns_initial(self):
        chain = birth_death()
        initial = np.array([1.0, 0.0, 0.0])
        assert np.allclose(chain.transient(initial, 0.0), initial)

    def test_converges_to_stationary(self):
        chain = birth_death()
        distribution = chain.transient([1.0, 0.0, 0.0], 200.0)
        assert np.allclose(distribution, chain.stationary_distribution(), atol=1e-8)

    def test_matches_expm(self):
        from scipy.linalg import expm

        chain = birth_death()
        t = 0.7
        expected = np.array([0.0, 1.0, 0.0]) @ expm(chain.generator * t)
        assert np.allclose(chain.transient([0.0, 1.0, 0.0], t), expected, atol=1e-10)

    def test_transient_reward(self):
        chain = birth_death()
        value = chain.transient_reward([1.0, 0.0, 0.0], [0.0, 1.0, 2.0], 1.0)
        distribution = chain.transient([1.0, 0.0, 0.0], 1.0)
        assert np.isclose(value, distribution @ np.array([0.0, 1.0, 2.0]))


class TestAbsorption:
    def make_absorbing(self):
        generator = np.array(
            [
                [-1.0, 1.0, 0.0],
                [0.0, -2.0, 2.0],
                [0.0, 0.0, 0.0],
            ]
        )
        return CTMC(generator, states=["a", "b", "absorbed"])

    def test_absorbing_states_detected(self):
        assert self.make_absorbing().absorbing_states() == ["absorbed"]

    def test_mean_time_to_absorption(self):
        chain = self.make_absorbing()
        # E[T] from a = 1/1 + 1/2 = 1.5
        assert np.isclose(chain.mean_time_to_absorption([1.0, 0.0, 0.0]), 1.5)

    def test_mean_time_from_middle(self):
        chain = self.make_absorbing()
        assert np.isclose(chain.mean_time_to_absorption([0.0, 1.0, 0.0]), 0.5)

    def test_no_absorbing_state_raises(self):
        with pytest.raises(SolverError, match="no absorbing"):
            birth_death().mean_time_to_absorption([1.0, 0.0, 0.0])
