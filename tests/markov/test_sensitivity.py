"""Tests for exact CTMC stationary sensitivities."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.markov.ctmc import CTMC
from repro.markov.sensitivity import (
    rate_elasticity,
    reward_derivative,
    stationary_derivative,
)


def two_state(fail=1.0, repair=4.0):
    return CTMC(np.array([[-fail, fail], [repair, -repair]]))


# dQ/d(fail): only the first row depends on the fail rate
D_FAIL = np.array([[-1.0, 1.0], [0.0, 0.0]])
D_REPAIR = np.array([[0.0, 0.0], [1.0, -1.0]])


class TestStationaryDerivative:
    def test_against_closed_form(self):
        """pi_up = r / (f + r): d pi_up / d f = -r / (f+r)^2."""
        f, r = 1.0, 4.0
        chain = two_state(f, r)
        derivative = stationary_derivative(chain, D_FAIL)
        expected_up = -r / (f + r) ** 2
        assert np.isclose(derivative[0], expected_up)
        assert np.isclose(derivative[1], -expected_up)

    def test_sums_to_zero(self):
        derivative = stationary_derivative(two_state(), D_REPAIR)
        assert np.isclose(derivative.sum(), 0.0)

    def test_matches_finite_difference(self):
        f, r, h = 1.0, 4.0, 1e-6
        exact = stationary_derivative(two_state(f, r), D_FAIL)
        pi_plus = two_state(f + h, r).stationary_distribution()
        pi_minus = two_state(f - h, r).stationary_distribution()
        numeric = (pi_plus - pi_minus) / (2 * h)
        assert np.allclose(exact, numeric, atol=1e-6)

    def test_shape_checked(self):
        with pytest.raises(SolverError):
            stationary_derivative(two_state(), np.zeros((3, 3)))

    def test_row_sums_checked(self):
        with pytest.raises(SolverError, match="sum to zero"):
            stationary_derivative(two_state(), np.array([[1.0, 1.0], [0.0, 0.0]]))


class TestRewardDerivative:
    def test_availability_sensitivity(self):
        chain = two_state(1.0, 4.0)
        value = reward_derivative(chain, np.array([1.0, 0.0]), D_FAIL)
        assert np.isclose(value, -4.0 / 25.0)

    def test_reward_shape_checked(self):
        with pytest.raises(SolverError):
            reward_derivative(two_state(), np.array([1.0]), D_FAIL)


class TestRateElasticity:
    def test_value(self):
        # E = pi_up = r/(f+r) = 0.8; dE/df = -0.16; elasticity = f/E * dE/df
        chain = two_state(1.0, 4.0)
        value = rate_elasticity(chain, np.array([1.0, 0.0]), D_FAIL, rate=1.0)
        assert np.isclose(value, 1.0 / 0.8 * (-4.0 / 25.0))

    def test_rejects_non_positive_rate(self):
        with pytest.raises(SolverError):
            rate_elasticity(two_state(), np.array([1.0, 0.0]), D_FAIL, rate=0.0)
