"""Tests for CTMC first-passage analysis."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.markov.ctmc import CTMC
from repro.markov.first_passage import (
    hitting_probability_by,
    mean_hitting_times,
    mean_time_to_hit,
    mean_time_to_predicate,
)


def chain_line():
    """a -> b -> c with rates 1 and 2 (and slow returns for irreducibility)."""
    return CTMC.from_rates(
        ["a", "b", "c"],
        {
            ("a", "b"): 1.0,
            ("b", "c"): 2.0,
            ("c", "a"): 0.1,
            ("b", "a"): 0.0001,
        },
    )


class TestMeanHittingTimes:
    def test_simple_line(self):
        chain = CTMC.from_rates(
            ["a", "b", "c"],
            {("a", "b"): 1.0, ("b", "c"): 2.0, ("c", "a"): 5.0},
        )
        times = mean_hitting_times(chain, ["c"])
        assert np.isclose(times["b"], 0.5)
        assert np.isclose(times["a"], 1.0 + 0.5)

    def test_target_states_excluded_from_result(self):
        chain = chain_line()
        times = mean_hitting_times(chain, ["c"])
        assert "c" not in times

    def test_empty_target_rejected(self):
        with pytest.raises(SolverError):
            mean_hitting_times(chain_line(), [])

    def test_full_target_rejected(self):
        with pytest.raises(SolverError):
            mean_hitting_times(chain_line(), ["a", "b", "c"])

    def test_unreachable_target_rejected(self):
        chain = CTMC(
            np.array(
                [
                    [-1.0, 1.0, 0.0],
                    [1.0, -1.0, 0.0],
                    [0.0, 0.0, 0.0],
                ]
            ),
            states=["a", "b", "island"],
        )
        with pytest.raises(SolverError):
            mean_hitting_times(chain, ["island"])


class TestMeanTimeToHit:
    def test_weights_initial_distribution(self):
        chain = CTMC.from_rates(
            ["a", "b", "c"],
            {("a", "b"): 1.0, ("b", "c"): 2.0, ("c", "a"): 5.0},
        )
        value = mean_time_to_hit(chain, ["c"], [0.5, 0.5, 0.0])
        assert np.isclose(value, 0.5 * 1.5 + 0.5 * 0.5)

    def test_mass_on_target_contributes_zero(self):
        chain = chain_line()
        assert mean_time_to_hit(chain, ["c"], [0.0, 0.0, 1.0]) == 0.0

    def test_predicate_wrapper(self):
        chain = chain_line()
        direct = mean_time_to_hit(chain, ["c"], [1.0, 0.0, 0.0])
        predicate = mean_time_to_predicate(chain, lambda s: s == "c", [1.0, 0.0, 0.0])
        assert np.isclose(direct, predicate)


class TestHittingProbability:
    def test_zero_horizon(self):
        chain = chain_line()
        assert hitting_probability_by(chain, ["c"], [1.0, 0.0, 0.0], 0.0) == 0.0

    def test_long_horizon_approaches_one(self):
        chain = chain_line()
        value = hitting_probability_by(chain, ["c"], [1.0, 0.0, 0.0], 1000.0)
        assert value > 0.999

    def test_monotone_in_horizon(self):
        chain = chain_line()
        values = [
            hitting_probability_by(chain, ["c"], [1.0, 0.0, 0.0], t)
            for t in (0.5, 1.0, 2.0, 5.0)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_against_analytic_single_step(self):
        """a -> target with rate 1: P(hit by t) = 1 - exp(-t)."""
        chain = CTMC.from_rates(["a", "t"], {("a", "t"): 1.0, ("t", "a"): 0.5})
        for t in (0.1, 1.0, 3.0):
            value = hitting_probability_by(chain, ["t"], [1.0, 0.0], t)
            assert np.isclose(value, 1 - np.exp(-t), atol=1e-9)

    def test_negative_horizon_rejected(self):
        with pytest.raises(SolverError):
            hitting_probability_by(chain_line(), ["c"], [1.0, 0.0, 0.0], -1.0)
