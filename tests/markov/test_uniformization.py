"""Tests for uniformization and matrix-exponential integrals."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.errors import SolverError
from repro.markov.uniformization import expm_and_integral, transient_distribution

GENERATOR = np.array([[-1.0, 1.0], [4.0, -4.0]])


class TestTransientDistribution:
    def test_matches_expm(self):
        initial = np.array([1.0, 0.0])
        for t in (0.1, 1.0, 10.0):
            expected = initial @ expm(GENERATOR * t)
            result = transient_distribution(GENERATOR, initial, t)
            assert np.allclose(result, expected, atol=1e-10)

    def test_mass_conserved(self):
        result = transient_distribution(GENERATOR, np.array([0.5, 0.5]), 3.0)
        assert np.isclose(result.sum(), 1.0, atol=1e-10)

    def test_zero_time(self):
        initial = np.array([0.3, 0.7])
        assert np.allclose(transient_distribution(GENERATOR, initial, 0.0), initial)

    def test_large_lt_stable(self):
        # L*t = 4 * 5000 = 20000: log-space Poisson weights must survive
        result = transient_distribution(GENERATOR, np.array([1.0, 0.0]), 5000.0)
        assert np.allclose(result, [0.8, 0.2], atol=1e-6)

    def test_negative_time_rejected(self):
        with pytest.raises(SolverError):
            transient_distribution(GENERATOR, np.array([1.0, 0.0]), -1.0)

    def test_invalid_generator_rejected(self):
        with pytest.raises(SolverError):
            transient_distribution(np.array([[1.0, 0.0], [0.0, 0.0]]), np.array([1.0, 0.0]), 1.0)


class TestExpmAndIntegral:
    def test_exponential_part(self):
        at, _ = expm_and_integral(GENERATOR, 0.7)
        assert np.allclose(at, expm(GENERATOR * 0.7))

    def test_integral_part_vs_quadrature(self):
        _, integral = expm_and_integral(GENERATOR, 2.0)
        steps = 20000
        dt = 2.0 / steps
        quad = sum(
            expm(GENERATOR * ((k + 0.5) * dt)) * dt for k in range(steps)
        )
        assert np.allclose(integral, quad, atol=1e-6)

    def test_zero_time(self):
        at, integral = expm_and_integral(GENERATOR, 0.0)
        assert np.allclose(at, np.eye(2))
        assert np.allclose(integral, np.zeros((2, 2)))

    def test_subgenerator_allowed(self):
        # rows need not sum to zero (absorbing remainder)
        sub = np.array([[-2.0, 0.5], [0.0, -1.0]])
        at, integral = expm_and_integral(sub, 1.0)
        assert np.all(at >= -1e-12)
        # total integral row sums = expected time alive, bounded by t
        assert np.all(integral.sum(axis=1) <= 1.0 + 1e-9)

    def test_negative_time_rejected(self):
        with pytest.raises(SolverError):
            expm_and_integral(GENERATOR, -0.5)
