"""Capacity bounds interacting with reachability."""

from repro.petri import NetBuilder
from repro.statespace import tangible_reachability


class TestCapacityBoundedReachability:
    def test_capacity_truncates_state_space(self):
        """A producer/consumer whose buffer capacity caps the states."""
        builder = NetBuilder("buffer")
        builder.place("Source", tokens=1)
        builder.place("Buffer", capacity=3)
        builder.exponential(
            "produce", rate=1.0, inputs={"Source": 1}, outputs={"Source": 1, "Buffer": 1}
        )
        builder.exponential("consume", rate=2.0, inputs={"Buffer": 1})
        net = builder.build()
        graph = tangible_reachability(net)
        # states: Buffer in {0,1,2,3} with Source=1
        assert graph.n_states == 4
        assert max(m["Buffer"] for m in graph.markings) == 3

    def test_full_buffer_disables_producer(self):
        builder = NetBuilder("buffer")
        builder.place("Source", tokens=1)
        builder.place("Buffer", tokens=2, capacity=2)
        builder.exponential(
            "produce", rate=1.0, inputs={"Source": 1}, outputs={"Source": 1, "Buffer": 1}
        )
        builder.exponential("consume", rate=2.0, inputs={"Buffer": 1})
        net = builder.build()
        marking = net.initial_marking()
        assert not net.is_enabled(net.transitions["produce"], marking)
        assert net.is_enabled(net.transitions["consume"], marking)

    def test_capacity_survives_steady_state_solve(self):
        from repro.dspn import solve_steady_state

        builder = NetBuilder("mm1k")
        builder.place("Source", tokens=1)
        builder.place("Queue", capacity=5)
        builder.exponential(
            "arrive", rate=1.0, inputs={"Source": 1}, outputs={"Source": 1, "Queue": 1}
        )
        builder.exponential("serve", rate=1.5, inputs={"Queue": 1})
        net = builder.build()
        result = solve_steady_state(net)
        # M/M/1/5 queue: p_n = (1-rho) rho^n / (1 - rho^7)... with K=5:
        rho = 1.0 / 1.5
        norm = sum(rho**n for n in range(6))
        import numpy as np

        for n in range(6):
            measured = result.probability(lambda m, n=n: m["Queue"] == n)
            assert np.isclose(measured, rho**n / norm, rtol=1e-9)
