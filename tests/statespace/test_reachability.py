"""Tests for reachability exploration and classification."""

import pytest

from repro.errors import StateSpaceError
from repro.petri import NetBuilder
from repro.statespace.reachability import explore


class TestExplore:
    def test_two_state_net(self, two_state_net):
        graph = explore(two_state_net)
        assert graph.n_states == 2
        assert graph.vanishing == [False, False]

    def test_edges_carry_rates(self, two_state_net):
        graph = explore(two_state_net)
        (edge,) = graph.edges[0]
        assert edge.kind == "exponential"
        assert edge.value == 0.01

    def test_vanishing_classification(self, immediate_chain_net):
        graph = explore(immediate_chain_net)
        # A=1 and B=1 are vanishing, C=1 and D=1 tangible
        assert sum(graph.vanishing) == 2
        assert graph.n_states == 4

    def test_immediate_priority_filters_competitors(self):
        builder = NetBuilder("priority")
        builder.place("A", tokens=1).place("B").place("C").place("D")
        builder.immediate("high", priority=2, inputs={"A": 1}, outputs={"B": 1})
        builder.immediate("low", priority=1, inputs={"A": 1}, outputs={"C": 1})
        builder.exponential("park", rate=1.0, inputs={"B": 1}, outputs={"D": 1})
        builder.exponential("park2", rate=1.0, inputs={"C": 1}, outputs={"D": 1})
        net = builder.build()
        graph = explore(net)
        initial_edges = graph.edges[0]
        assert [e.transition for e in initial_edges] == ["high"]

    def test_deterministic_edges(self, clocked_net):
        graph = explore(clocked_net)
        kinds = {e.kind for edges in graph.edges for e in edges}
        assert kinds == {"exponential", "deterministic"}

    def test_max_states_bound(self):
        builder = NetBuilder("unbounded")
        builder.place("A", tokens=1)
        builder.place("B")
        # B grows without bound
        builder.exponential("t", rate=1.0, inputs={"A": 1}, outputs={"A": 1, "B": 1})
        net = builder.build()
        with pytest.raises(StateSpaceError, match="exceeded"):
            explore(net, max_states=50)

    def test_absorbing_state_allowed(self):
        builder = NetBuilder("absorbing")
        builder.place("A", tokens=1).place("B")
        builder.exponential("t", rate=1.0, inputs={"A": 1}, outputs={"B": 1})
        net = builder.build()
        graph = explore(net)
        assert graph.n_states == 2
        assert graph.edges[1] == []

    def test_infinite_server_rate_in_edges(self):
        from repro.petri import ServerSemantics

        builder = NetBuilder("inf")
        builder.place("A", tokens=3).place("B")
        builder.exponential(
            "t",
            rate=1.0,
            server=ServerSemantics.INFINITE,
            inputs={"A": 1},
            outputs={"B": 1},
        )
        net = builder.build()
        graph = explore(net)
        initial_edge = graph.edges[0][0]
        assert initial_edge.value == 3.0

    def test_states_indexed_in_discovery_order(self, two_state_net):
        graph = explore(two_state_net)
        assert graph.markings[graph.initial] == two_state_net.initial_marking()
