"""Tests for vanishing-marking elimination."""

import math

import pytest

from repro.errors import StateSpaceError
from repro.petri import NetBuilder
from repro.statespace import eliminate_vanishing, explore, tangible_reachability


class TestElimination:
    def test_no_vanishing_is_identity_like(self, two_state_net):
        graph = tangible_reachability(two_state_net)
        assert graph.n_states == 2
        assert graph.initial_distribution == [1.0, 0.0]

    def test_chain_collapses(self, immediate_chain_net):
        graph = tangible_reachability(immediate_chain_net)
        assert graph.n_states == 2
        # initial marking A=1 resolves through B to tangible C
        assert graph.initial_distribution == [1.0, 0.0]
        assert graph.markings[0]["C"] == 1

    def test_probabilistic_split_weights(self):
        builder = NetBuilder("split")
        builder.place("A", tokens=1).place("B").place("C")
        builder.immediate("toB", weight=1.0, inputs={"A": 1}, outputs={"B": 1})
        builder.immediate("toC", weight=3.0, inputs={"A": 1}, outputs={"C": 1})
        builder.exponential("loopB", rate=1.0, inputs={"B": 1}, outputs={"A": 1})
        builder.exponential("loopC", rate=1.0, inputs={"C": 1}, outputs={"A": 1})
        net = builder.build()
        graph = tangible_reachability(net)
        assert graph.n_states == 2
        distribution = dict(
            zip((m.compact() for m in graph.markings), graph.initial_distribution)
        )
        assert math.isclose(distribution["B=1"], 0.25)
        assert math.isclose(distribution["C=1"], 0.75)

    def test_exponential_edge_targets_fold_vanishing(self):
        builder = NetBuilder("fold")
        builder.place("A", tokens=1).place("V").place("B").place("C")
        builder.exponential("go", rate=2.0, inputs={"A": 1}, outputs={"V": 1})
        builder.immediate("vb", weight=1.0, inputs={"V": 1}, outputs={"B": 1})
        builder.immediate("vc", weight=1.0, inputs={"V": 1}, outputs={"C": 1})
        builder.exponential("back1", rate=1.0, inputs={"B": 1}, outputs={"A": 1})
        builder.exponential("back2", rate=1.0, inputs={"C": 1}, outputs={"A": 1})
        net = builder.build()
        graph = tangible_reachability(net)
        a_index = next(
            i for i, m in enumerate(graph.markings) if m["A"] == 1
        )
        (edge,) = graph.exponential_edges[a_index]
        assert edge.rate == 2.0
        assert sorted(p for _, p in edge.targets) == [0.5, 0.5]

    def test_vanishing_cycle_with_escape(self):
        """Immediate ping-pong with an escape still absorbs correctly."""
        builder = NetBuilder("loop-escape")
        builder.place("A", tokens=1).place("B").place("Out")
        builder.immediate("ab", weight=1.0, inputs={"A": 1}, outputs={"B": 1})
        builder.immediate("ba", weight=1.0, inputs={"B": 1}, outputs={"A": 1})
        builder.immediate("escape", weight=1.0, inputs={"B": 1}, outputs={"Out": 1})
        builder.exponential("park", rate=1.0, inputs={"Out": 1}, outputs={"A": 1})
        net = builder.build()
        graph = tangible_reachability(net)
        assert graph.n_states == 1
        assert graph.markings[0]["Out"] == 1

    def test_vanishing_trap_raises(self):
        builder = NetBuilder("trap")
        builder.place("A", tokens=1).place("B")
        builder.immediate("ab", inputs={"A": 1}, outputs={"B": 1})
        builder.immediate("ba", inputs={"B": 1}, outputs={"A": 1})
        net = builder.build()
        with pytest.raises(StateSpaceError):
            eliminate_vanishing(explore(net))

    def test_marking_dependent_weights(self):
        builder = NetBuilder("weighted")
        builder.place("Sel", tokens=1).place("H", tokens=3).place("C", tokens=1)
        builder.place("OutH").place("OutC")
        builder.immediate(
            "pickH",
            weight=lambda m: m["H"] / (m["H"] + m["C"]),
            inputs={"Sel": 1, "H": 1},
            outputs={"OutH": 1},
        )
        builder.immediate(
            "pickC",
            weight=lambda m: m["C"] / (m["H"] + m["C"]),
            inputs={"Sel": 1, "C": 1},
            outputs={"OutC": 1},
        )
        builder.exponential("refill", rate=1.0, inputs={"OutH": 1}, outputs={"Sel": 1, "H": 1})
        builder.exponential("refill2", rate=1.0, inputs={"OutC": 1}, outputs={"Sel": 1, "C": 1})
        net = builder.build()
        graph = tangible_reachability(net)
        distribution = {
            marking.compact(): probability
            for marking, probability in zip(graph.markings, graph.initial_distribution)
            if probability > 0
        }
        # picked H with probability 3/4
        assert math.isclose(sum(distribution.values()), 1.0)
        h_key = next(k for k in distribution if "OutH" in k)
        assert math.isclose(distribution[h_key], 0.75)
