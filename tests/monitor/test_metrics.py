"""Tests for the ground-truth monitoring metrics."""

import pytest

from repro.monitor.metrics import MonitorMetrics
from repro.simulation.voter import VoteOutcome


@pytest.fixture
def metrics():
    return MonitorMetrics(detection_threshold=0.5, reliability_window=4)


class TestDetection:
    def test_latency_from_compromise_to_flag(self, metrics):
        metrics.record_transition(10.0, 0, "compromise")
        metrics.record_flag(15.0, 0)
        summary = metrics.summary()
        assert summary.compromises == 1
        assert summary.detected == 1
        assert summary.mean_detection_latency == pytest.approx(5.0)
        assert summary.max_detection_latency == pytest.approx(5.0)
        assert summary.false_alarms == 0

    def test_undetected_compromise_is_censored(self, metrics):
        metrics.record_transition(10.0, 0, "compromise")
        metrics.record_transition(20.0, 0, "rejuvenation-start")
        summary = metrics.summary()
        assert summary.censored == 1
        assert summary.detected == 0
        assert summary.mean_detection_latency is None

    def test_failure_censors_too(self, metrics):
        metrics.record_transition(10.0, 0, "compromise")
        metrics.record_transition(12.0, 0, "fail")
        assert metrics.summary().censored == 1

    def test_flag_on_healthy_module_is_false_alarm(self, metrics):
        metrics.record_flag(5.0, 3)
        summary = metrics.summary()
        assert summary.false_alarms == 1
        assert summary.detected == 0

    def test_compromise_while_flagged_detected_immediately(self, metrics):
        """A standing (false-alarm) flag detects the compromise at t=0."""
        metrics.record_flag(5.0, 0)
        metrics.record_transition(10.0, 0, "compromise")
        summary = metrics.summary()
        assert summary.detected == 1
        assert summary.mean_detection_latency == 0.0

    def test_duplicate_flags_ignored(self, metrics):
        metrics.record_flag(5.0, 0)
        metrics.record_flag(6.0, 0)
        assert metrics.summary().false_alarms == 1

    def test_repair_clears_stale_flag(self, metrics):
        """After a repair the module is healthy; old flags must not
        detect the *next* compromise instantly."""
        metrics.record_flag(5.0, 0)
        metrics.record_transition(6.0, 0, "repair")
        metrics.record_transition(10.0, 0, "compromise")
        metrics.record_flag(14.0, 0)
        summary = metrics.summary()
        assert summary.detected == 1
        assert summary.mean_detection_latency == pytest.approx(4.0)


class TestTriggers:
    def test_trigger_on_compromised_module(self, metrics):
        metrics.record_transition(10.0, 0, "compromise")
        metrics.record_transition(20.0, 0, "rejuvenation-start")
        summary = metrics.summary()
        assert summary.triggers == 1
        assert summary.false_triggers == 0
        assert summary.false_trigger_rate == 0.0

    def test_trigger_on_healthy_module_is_false(self, metrics):
        metrics.record_transition(20.0, 1, "rejuvenation-start")
        summary = metrics.summary()
        assert summary.triggers == 1
        assert summary.false_triggers == 1
        assert summary.false_trigger_rate == 1.0

    def test_trigger_after_detection_still_attributed(self, metrics):
        """Detection pops the pending-compromise entry; the later
        rejuvenation must still count as a true trigger."""
        metrics.record_transition(10.0, 0, "compromise")
        metrics.record_flag(12.0, 0)
        metrics.record_transition(600.0, 0, "rejuvenation-start")
        summary = metrics.summary()
        assert summary.triggers == 1
        assert summary.false_triggers == 0

    def test_rejuvenation_done_resets_attribution(self, metrics):
        metrics.record_transition(10.0, 0, "compromise")
        metrics.record_transition(20.0, 0, "rejuvenation-start")
        metrics.record_transition(23.0, 0, "rejuvenation-done")
        metrics.record_transition(30.0, 0, "rejuvenation-start")
        summary = metrics.summary()
        assert summary.triggers == 2
        assert summary.false_triggers == 1


class TestReliability:
    def test_cumulative_and_rolling(self, metrics):
        for outcome in [
            VoteOutcome.ERROR,
            VoteOutcome.CORRECT,
            VoteOutcome.CORRECT,
            VoteOutcome.CORRECT,
            VoteOutcome.CORRECT,
            VoteOutcome.CORRECT,
        ]:
            metrics.record_round(outcome)
        summary = metrics.summary()
        assert summary.rounds == 6
        assert summary.errors == 1
        assert summary.empirical_reliability == pytest.approx(5 / 6)
        # window of 4: the error has rolled out
        assert summary.rolling_reliability == 1.0

    def test_inconclusive_is_not_an_error(self, metrics):
        metrics.record_round(VoteOutcome.INCONCLUSIVE)
        assert metrics.summary().errors == 0

    def test_empty_run(self, metrics):
        summary = metrics.summary()
        assert summary.empirical_reliability == 1.0
        assert summary.rolling_reliability == 1.0
        assert summary.detection_rate == 0.0

    def test_render_mentions_key_numbers(self, metrics):
        metrics.record_transition(10.0, 0, "compromise")
        metrics.record_flag(15.0, 0)
        metrics.record_round(VoteOutcome.CORRECT)
        text = metrics.summary().render()
        assert "5.0 s" in text
        assert "1 detected" in text

    def test_reset(self, metrics):
        metrics.record_transition(10.0, 0, "compromise")
        metrics.record_round(VoteOutcome.ERROR)
        metrics.reset()
        summary = metrics.summary()
        assert summary.compromises == 0
        assert summary.rounds == 0
