"""Tests for the Bayesian health estimator."""

import pytest

from repro.errors import SimulationError
from repro.monitor.estimator import (
    HealthEstimator,
    healthy_deviation_probability,
    per_module_compromise_rate,
)
from repro.perception.parameters import PerceptionParameters
from repro.simulation.faults import FaultSemantics


@pytest.fixture
def parameters():
    return PerceptionParameters.six_version_defaults()


class TestPriorDynamics:
    def test_rates_come_from_the_analytic_model(self, parameters):
        """The filter's dynamics are the DSPN's Tc/Tf rates, untouched."""
        estimator = HealthEstimator(parameters)
        assert estimator.failure_rate == parameters.lambda_f
        assert estimator.compromise_rate == pytest.approx(
            parameters.lambda_c / parameters.n_modules
        )

    def test_per_module_semantics_uses_full_rate(self, parameters):
        assert per_module_compromise_rate(
            parameters, FaultSemantics.PER_MODULE
        ) == pytest.approx(parameters.lambda_c)

    def test_belief_drifts_towards_compromised_without_votes(self, parameters):
        estimator = HealthEstimator(parameters)
        early = estimator.probability_compromised(0, now=10.0)
        late = estimator.probability_compromised(0, now=5000.0)
        assert 0.0 < early < late < 1.0

    def test_time_running_backwards_rejected(self, parameters):
        estimator = HealthEstimator(parameters)
        estimator.update(0, False, now=10.0)
        with pytest.raises(SimulationError):
            estimator.update(0, False, now=5.0)


class TestLikelihood:
    def test_healthy_deviation_probability_below_p_prime(self, parameters):
        assert (
            healthy_deviation_probability(parameters) < parameters.p_prime
        )

    def test_uninformative_likelihoods_rejected(self, parameters):
        with pytest.raises(SimulationError):
            HealthEstimator(
                parameters,
                p_deviate_healthy=0.5,
                p_deviate_compromised=0.5,
            )

    def test_deviations_raise_suspicion(self, parameters):
        estimator = HealthEstimator(parameters)
        for i in range(20):
            estimator.update(0, deviated=True, now=float(i + 1))
        assert estimator.probability_compromised(0) > 0.99

    def test_agreement_clears_suspicion(self, parameters):
        estimator = HealthEstimator(parameters)
        for i in range(5):
            estimator.update(0, deviated=True, now=float(i + 1))
        suspicious = estimator.probability_compromised(0)
        for i in range(50):
            estimator.update(0, deviated=False, now=float(i + 6))
        assert estimator.probability_compromised(0) < suspicious

    def test_compromised_behaviour_detected_quickly(self, parameters):
        """A module deviating at rate p' crosses 0.9 within ~20 rounds."""
        estimator = HealthEstimator(parameters)
        crossed_at = None
        pattern = [True, False] * 15  # deviation rate 0.5 = p'
        for i, deviated in enumerate(pattern):
            p = estimator.update(0, deviated, now=float(i + 1))
            if p > 0.9:
                crossed_at = i
                break
        assert crossed_at is not None and crossed_at <= 20

    def test_healthy_behaviour_stays_calm(self, parameters):
        """Isolated deviations at the healthy rate never cross 0.5."""
        estimator = HealthEstimator(parameters)
        for i in range(300):
            estimator.update(0, deviated=(i % 25 == 0), now=float(i + 1))
            assert estimator.probability_compromised(0) < 0.5


class TestAvailability:
    def test_unavailable_module_has_no_posterior(self, parameters):
        estimator = HealthEstimator(parameters)
        estimator.observe_unavailable(0, now=5.0)
        assert estimator.probability_compromised(0) is None
        with pytest.raises(SimulationError):
            estimator.update(0, False, now=6.0)

    def test_return_resets_belief_and_staleness(self, parameters):
        estimator = HealthEstimator(parameters)
        for i in range(10):
            estimator.update(0, True, now=float(i + 1))
        estimator.observe_unavailable(0, now=20.0)
        estimator.observe_return(0, now=25.0)
        assert estimator.probability_compromised(0) == 0.0
        assert estimator.last_reset(0) == 25.0

    def test_suspicion_map_covers_all_modules(self, parameters):
        estimator = HealthEstimator(parameters)
        estimator.observe_unavailable(2, now=1.0)
        suspicion = estimator.suspicion()
        assert set(suspicion) == set(range(parameters.n_modules))
        assert suspicion[2] is None

    def test_reset_restores_fresh_state(self, parameters):
        estimator = HealthEstimator(parameters)
        estimator.update(0, True, now=1.0)
        estimator.reset()
        assert estimator.probability_compromised(0) == 0.0
        assert estimator.last_reset(0) == 0.0
