"""Tests for the monitor controller (observer hooks and decision plumbing)."""

import pytest

from repro.errors import SimulationError
from repro.monitor.controller import MonitorController
from repro.monitor.policies import (
    PeriodicPolicy,
    RejuvenationPolicy,
    TargetedPolicy,
    ThresholdPolicy,
)
from repro.nversion.voting import VotingScheme
from repro.perception.parameters import PerceptionParameters
from repro.simulation.voter import Voter


@pytest.fixture
def parameters():
    return PerceptionParameters.six_version_defaults()


def feed_round(controller, now, outputs, truth=0):
    voter = Voter(VotingScheme.bft_with_rejuvenation(1, 1))
    tally = voter.tally(outputs, truth)
    return controller.observe_round(now, outputs, tally, voter.classify(tally))


class TestConstruction:
    def test_passive_controller_does_not_drive_clock(self, parameters):
        controller = MonitorController(parameters, PeriodicPolicy())
        assert not controller.drives_clock

    def test_active_policy_requires_rejuvenation(self, parameters):
        disabled = parameters.replace(rejuvenation=False)
        with pytest.raises(SimulationError, match="rejuvenation disabled"):
            MonitorController(disabled, ThresholdPolicy())

    def test_passive_policy_tolerates_disabled_rejuvenation(self, parameters):
        disabled = parameters.replace(rejuvenation=False)
        controller = MonitorController(disabled, PeriodicPolicy())
        assert controller.on_tick(600.0) == []


class TestPassiveObservation:
    def test_rounds_return_no_commands(self, parameters):
        controller = MonitorController(parameters, PeriodicPolicy())
        controller.begin_run()
        n = parameters.n_modules
        commands = feed_round(controller, 1.0, [0] * (n - 1) + [7])
        assert commands == []
        assert controller.on_tick(600.0) == []

    def test_estimator_sees_deviations(self, parameters):
        controller = MonitorController(parameters, PeriodicPolicy())
        controller.begin_run()
        n = parameters.n_modules
        for i in range(30):
            feed_round(controller, float(i + 1), [0] * (n - 1) + [7])
        suspicion = controller.estimator.suspicion()
        assert suspicion[n - 1] > 0.9
        assert all(suspicion[m] < 0.5 for m in range(n - 1))

    def test_missing_output_marks_module_unavailable(self, parameters):
        controller = MonitorController(parameters, PeriodicPolicy())
        controller.begin_run()
        n = parameters.n_modules
        feed_round(controller, 1.0, [None] + [0] * (n - 1))
        assert controller.estimator.probability_compromised(0) is None
        feed_round(controller, 2.0, [0] * n)
        assert controller.estimator.probability_compromised(0) == 0.0

    def test_metrics_observe_rounds_and_transitions(self, parameters):
        controller = MonitorController(parameters, PeriodicPolicy())
        controller.begin_run()
        n = parameters.n_modules
        feed_round(controller, 1.0, [0] * n)
        controller.notify_transition(2.0, 0, "compromise")
        summary = controller.summary()
        assert summary.rounds == 1
        assert summary.compromises == 1


class TestActiveControl:
    def make_threshold_controller(self, parameters):
        controller = MonitorController(
            parameters, ThresholdPolicy(bound=0.9), detection_threshold=0.9
        )
        controller.begin_run()
        return controller

    def test_commands_wait_for_budget(self, parameters):
        controller = self.make_threshold_controller(parameters)
        n = parameters.n_modules
        # make module n-1 thoroughly suspect before any tick: no tokens yet
        commands = []
        for i in range(30):
            commands += feed_round(
                controller, float(i + 1), [0] * (n - 1) + [7]
            )
        assert commands == []
        # first tick funds exactly r = 1 rejuvenation of the suspect
        assert controller.on_tick(600.0) == [n - 1]
        # the victim is now down and cannot be selected again
        assert controller.on_tick(1200.0) == []

    def test_round_can_trigger_once_funded(self, parameters):
        controller = self.make_threshold_controller(parameters)
        n = parameters.n_modules
        controller.on_tick(600.0)  # accrue one token, nobody suspect yet
        commands = []
        for i in range(30):
            commands += feed_round(
                controller, 600.0 + float(i + 1), [0] * (n - 1) + [7]
            )
        assert commands == [n - 1]

    def test_targeted_policy_spends_tick_allowance(self, parameters):
        controller = MonitorController(parameters, TargetedPolicy())
        controller.begin_run()
        n = parameters.n_modules
        for i in range(30):
            feed_round(controller, float(i + 1), [0] * (n - 1) + [7])
        assert controller.on_tick(600.0) == [n - 1]

    def test_tick_availability_marks_faulted_modules(self, parameters):
        controller = self.make_threshold_controller(parameters)
        operational = [True] * parameters.n_modules
        operational[2] = False
        controller.on_tick(600.0, operational)
        assert controller.estimator.probability_compromised(2) is None

    def test_rogue_policy_cannot_overspend(self, parameters):
        class RoguePolicy(RejuvenationPolicy):
            name = "rogue"

            def on_tick(self, view):
                return [0, 1, 2, 3]

            def on_round(self, view):
                return []

        controller = MonitorController(parameters, RoguePolicy())
        controller.begin_run()
        with pytest.raises(SimulationError, match="overspent"):
            controller.on_tick(600.0)

    def test_rogue_policy_cannot_select_unavailable(self, parameters):
        class RoguePolicy(RejuvenationPolicy):
            name = "rogue"

            def on_tick(self, view):
                return [2]

            def on_round(self, view):
                return []

        controller = MonitorController(parameters, RoguePolicy())
        controller.begin_run()
        operational = [True] * parameters.n_modules
        operational[2] = False
        with pytest.raises(SimulationError, match="unavailable"):
            controller.on_tick(600.0, operational)

    def test_begin_run_restores_fresh_state(self, parameters):
        controller = self.make_threshold_controller(parameters)
        n = parameters.n_modules
        for i in range(30):
            feed_round(controller, float(i + 1), [0] * (n - 1) + [7])
        controller.on_tick(600.0)
        controller.begin_run()
        assert controller.budget.tokens == 0
        assert controller.estimator.probability_compromised(n - 1) == 0.0
        assert controller.summary().rounds == 0
