"""Tests for rejuvenation policies and the token-bucket budget."""

import pytest

from repro.monitor.policies import (
    POLICY_NAMES,
    PeriodicPolicy,
    PolicyView,
    RejuvenationBudget,
    TargetedPolicy,
    ThresholdPolicy,
    make_policy,
)


def view(suspicion, *, tokens=1, capacity=1, staleness=None, now=100.0):
    return PolicyView(
        now=now,
        suspicion=suspicion,
        staleness=staleness or {module_id: now for module_id in suspicion},
        budget_tokens=tokens,
        capacity=capacity,
    )


class TestBudget:
    def test_accrual_capped(self):
        budget = RejuvenationBudget(rate=1, cap=2)
        for _ in range(5):
            budget.accrue()
        assert budget.tokens == 2

    def test_spend_and_exhaustion(self):
        budget = RejuvenationBudget(rate=2)
        budget.accrue()
        budget.spend(2)
        assert budget.tokens == 0
        with pytest.raises(ValueError):
            budget.spend()

    def test_cap_defaults_to_rate(self):
        assert RejuvenationBudget(rate=3).cap == 3

    def test_starts_empty(self):
        """No spending before the first tick: fairness vs the baseline."""
        assert RejuvenationBudget(rate=1).tokens == 0


class TestPolicyView:
    def test_ranking_most_suspect_first(self):
        v = view({0: 0.1, 1: 0.9, 2: 0.4, 3: None})
        assert v.ranked_candidates() == [1, 2, 0]

    def test_tie_breaks_towards_stalest(self):
        v = view(
            {0: 0.0, 1: 0.0},
            staleness={0: 10.0, 1: 500.0},
        )
        assert v.ranked_candidates() == [1, 0]

    def test_allowance_is_min_of_budget_and_guard(self):
        assert view({0: 0.5}, tokens=3, capacity=1).allowance == 1
        assert view({0: 0.5}, tokens=0, capacity=2).allowance == 0


class TestPeriodicPolicy:
    def test_is_passive_and_silent(self):
        policy = PeriodicPolicy()
        assert policy.passive
        v = view({0: 1.0, 1: 1.0}, tokens=5, capacity=5)
        assert policy.on_tick(v) == []
        assert policy.on_round(v) == []


class TestTargetedPolicy:
    def test_spends_allowance_on_most_suspect(self):
        policy = TargetedPolicy()
        v = view({0: 0.2, 1: 0.8, 2: 0.5}, tokens=2, capacity=2)
        assert policy.on_tick(v) == [1, 2]

    def test_respects_guard(self):
        policy = TargetedPolicy()
        v = view({0: 0.2, 1: 0.8}, tokens=2, capacity=0)
        assert policy.on_tick(v) == []

    def test_silent_between_ticks(self):
        assert TargetedPolicy().on_round(view({0: 1.0})) == []


class TestThresholdPolicy:
    def test_fires_only_above_bound(self):
        policy = ThresholdPolicy(bound=0.7)
        assert policy.on_round(view({0: 0.69, 1: 0.2})) == []
        assert policy.on_round(view({0: 0.71, 1: 0.2})) == [0]

    def test_budget_limits_simultaneous_fires(self):
        policy = ThresholdPolicy(bound=0.5)
        v = view({0: 0.9, 1: 0.8, 2: 0.7}, tokens=1, capacity=3)
        assert policy.on_round(v) == [0]

    def test_tick_retries_suspects(self):
        policy = ThresholdPolicy(bound=0.5)
        v = view({0: 0.9}, tokens=1, capacity=1)
        assert policy.on_tick(v) == [0]

    def test_invalid_bound_rejected(self):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            ThresholdPolicy(bound=1.5)


class TestRegistry:
    def test_make_policy_all_names(self):
        for name in POLICY_NAMES:
            assert make_policy(name).name == name

    def test_make_policy_kwargs(self):
        assert make_policy("threshold", bound=0.42).bound == 0.42

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("oracle")
