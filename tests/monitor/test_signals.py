"""Tests for the disagreement-signal layer."""

import pytest

from repro.errors import SimulationError
from repro.monitor.signals import DisagreementWindow, RoundSignal, round_signal
from repro.nversion.voting import VotingScheme
from repro.simulation.voter import Voter


def tally_of(outputs, truth=0):
    return Voter(VotingScheme.bft(1)).tally(outputs, truth)


class TestRoundSignal:
    def test_deviation_against_plurality(self):
        outputs = [5, 5, 5, 9]
        signal = round_signal(1.0, outputs, tally_of(outputs, truth=5))
        assert signal.participated == (True, True, True, True)
        assert signal.deviated == (False, False, False, True)
        assert signal.margin == 2

    def test_missing_outputs_do_not_deviate(self):
        outputs = [5, None, 5, 9]
        signal = round_signal(2.0, outputs, tally_of(outputs, truth=5))
        assert signal.participated == (True, False, True, True)
        assert signal.deviated == (False, False, False, True)

    def test_empty_round_has_no_deviations(self):
        outputs = [None, None, None, None]
        signal = round_signal(3.0, outputs, tally_of(outputs))
        assert signal.deviated == (False,) * 4
        assert signal.margin == 0

    def test_deviation_is_ground_truth_free(self):
        """A wrong plurality flags the correct module — by design."""
        outputs = [8, 8, 8, 5]
        signal = round_signal(4.0, outputs, tally_of(outputs, truth=5))
        assert signal.deviated == (False, False, False, True)


class TestDisagreementWindow:
    def make_signal(self, time, deviated):
        n = len(deviated)
        return RoundSignal(
            time=time,
            participated=(True,) * n,
            deviated=tuple(deviated),
            margin=1,
        )

    def test_counts_accumulate(self):
        window = DisagreementWindow(3, size=10)
        window.observe(self.make_signal(0.0, [True, False, False]))
        window.observe(self.make_signal(1.0, [True, False, False]))
        window.observe(self.make_signal(2.0, [False, False, False]))
        assert window.deviations(0) == 2
        assert window.deviations(1) == 0
        assert window.participations(0) == 3
        assert window.deviation_rate(0) == pytest.approx(2 / 3)

    def test_eviction_keeps_counts_consistent(self):
        window = DisagreementWindow(2, size=3)
        for i in range(10):
            window.observe(self.make_signal(float(i), [i % 2 == 0, False]))
        assert len(window) == 3
        # last three rounds: i = 7, 8, 9 -> deviations at 8 only
        assert window.deviations(0) == 1
        assert window.participations(0) == 3

    def test_unobserved_module_rate_zero(self):
        window = DisagreementWindow(2, size=4)
        assert window.deviation_rate(0) == 0.0

    def test_mean_margin(self):
        window = DisagreementWindow(1, size=4)
        window.observe(RoundSignal(0.0, (True,), (False,), margin=3))
        window.observe(RoundSignal(1.0, (True,), (False,), margin=1))
        assert window.mean_margin() == pytest.approx(2.0)

    def test_snapshot(self):
        window = DisagreementWindow(2, size=4)
        window.observe(self.make_signal(0.0, [True, False]))
        assert window.snapshot() == {0: (1, 1), 1: (0, 1)}

    def test_reset(self):
        window = DisagreementWindow(2, size=4)
        window.observe(self.make_signal(0.0, [True, True]))
        window.reset()
        assert len(window) == 0
        assert window.deviations(0) == 0

    def test_size_mismatch_rejected(self):
        window = DisagreementWindow(3, size=4)
        with pytest.raises(SimulationError):
            window.observe(self.make_signal(0.0, [True, False]))
