"""The monitor layer's bridge onto the global obs registry and events."""

from __future__ import annotations

import pytest

from repro.monitor.controller import MonitorController
from repro.monitor.metrics import MonitorMetrics
from repro.monitor.policies import PeriodicPolicy
from repro.nversion.voting import VotingScheme
from repro.obs import event_stream, openmetrics, registry_override
from repro.perception.parameters import PerceptionParameters
from repro.simulation.voter import Voter


@pytest.fixture
def parameters():
    return PerceptionParameters.six_version_defaults()


def feed_round(controller, now, outputs, truth=0):
    voter = Voter(VotingScheme.bft_with_rejuvenation(1, 1))
    tally = voter.tally(outputs, truth)
    return controller.observe_round(now, outputs, tally, voter.classify(tally))


class TestControllerBridge:
    def test_rounds_feed_counters_and_disagreement_histogram(self, parameters):
        controller = MonitorController(parameters, PeriodicPolicy())
        controller.begin_run()
        n = parameters.n_modules
        with registry_override() as registry:
            for i in range(10):
                feed_round(controller, float(i + 1), [0] * (n - 1) + [7])
        assert registry.counter("monitor.rounds").value == 10.0
        assert registry.counter("monitor.estimator.updates").value == 10.0 * n
        histogram = registry.histogram("monitor.disagreement")
        assert histogram.count == 10
        # one deviating module out of n participants, every round
        assert histogram.max == pytest.approx(1.0 / n)

    def test_persistent_deviation_flags_module(self, parameters):
        controller = MonitorController(parameters, PeriodicPolicy())
        controller.begin_run()
        n = parameters.n_modules
        with registry_override() as registry, event_stream() as stream:
            for i in range(60):
                feed_round(controller, float(i + 1), [0] * (n - 1) + [7])
        assert registry.counter("monitor.flags").value >= 1.0
        flags = [e for e in stream.events if e["event"] == "monitor.flag"]
        assert flags and flags[0]["module"] == n - 1
        # ground truth never said "compromise", so the flag is a false alarm
        assert registry.counter("monitor.false_alarms").value >= 1.0


class TestMetricsBridge:
    def test_transitions_feed_counters_and_events(self):
        metrics = MonitorMetrics()
        with registry_override() as registry, event_stream() as stream:
            metrics.record_transition(10.0, 2, "compromise")
            metrics.record_transition(20.0, 2, "rejuvenation-start")
            metrics.record_transition(30.0, 4, "rejuvenation-start")
        assert registry.counter("monitor.compromises").value == 1.0
        assert registry.counter("monitor.rejuvenations").value == 2.0
        # module 4 was healthy: that rejuvenation was wasted
        assert registry.counter("monitor.rejuvenations.false").value == 1.0
        kinds = [e["event"] for e in stream.events]
        assert kinds == ["monitor.rejuvenation", "monitor.rejuvenation"]
        assert [e["module"] for e in stream.events] == [2, 4]

    def test_unflag_emits_only_when_flagged(self):
        metrics = MonitorMetrics()
        with registry_override(), event_stream() as stream:
            metrics.record_unflag(3)  # never flagged: silent
            metrics.record_flag(5.0, 3)
            metrics.record_unflag(3)
        kinds = [e["event"] for e in stream.events]
        assert kinds == ["monitor.flag", "monitor.unflag"]

    def test_one_openmetrics_dump_covers_monitor_and_solver(self, parameters):
        """The satellite's point: a single exposition holds both layers."""
        from repro.engine import cache_override
        from repro.perception.architecture import PerceptionSystem

        controller = MonitorController(parameters, PeriodicPolicy())
        controller.begin_run()
        n = parameters.n_modules
        # uncached, or a warm solver cache skips statespace exploration
        with registry_override() as registry, cache_override(enabled=False):
            PerceptionSystem(parameters).analyze()  # solver-side counters
            feed_round(controller, 1.0, [0] * n)  # monitor-side counters
            text = openmetrics(registry)
        assert "repro_statespace_states_explored_total" in text
        assert "repro_monitor_rounds_total 1.0" in text
        assert "# TYPE repro_monitor_disagreement summary" in text
