"""Statistical oracle for the sparse route on a fleet-scale net.

The seeded simulator knows nothing about generators, Krylov spaces, or
preconditioners — it just fires transitions.  If the empirical state
distribution it produces agrees with the sparse-analytic stationary
solution, the whole sparse pipeline (CSR build, reordering, ILU, GMRES,
refinement) is validated end-to-end by an independent witness.

Two agreements are checked on the N=15 fleet net:

* a Wilson CI on a Bernoulli indicator sampled at a long horizon (one
  sample per replication — genuinely binomial, so the Wilson interval
  is exact in its assumptions) must cover the sparse-analytic
  stationary probability;
* the simulator's time-averaged Eq. 1-style reward must agree with the
  sparse-analytic expectation within its replication CI.
"""

import pytest

from repro.dspn import solve_steady_state
from repro.dspn.simulate import simulate, transient_profile
from repro.engine.cache import cache_override
from repro.perception.fleet import FleetParameters, build_fleet_net
from repro.perception.statemap import module_counts
from repro.verify.oracles import wilson_interval

#: Long enough that the transient has converged: the analytic transient
#: at this horizon matches the stationary value to ~1e-5, far below the
#: Wilson half-width at these replication counts (~0.05).
HORIZON = 20_000.0

REPLICATIONS = 250


def compromised_indicator(marking) -> float:
    """1 if at least one module is compromised — stationary p ≈ 0.33."""
    return float(module_counts(marking).compromised >= 1)


@pytest.fixture(scope="module")
def fleet_solution():
    net = build_fleet_net(FleetParameters.nv15_defaults())
    with cache_override(enabled=False):
        result = solve_steady_state(net, method="sparse", verify=True)
    return net, result


class TestWilsonAgreement:
    def test_endpoint_samples_cover_the_sparse_analytic_value(self, fleet_solution):
        net, result = fleet_solution
        assert result.method == "sparse"
        analytic = result.expected_reward(compromised_indicator)
        # sanity: the indicator is informative, not degenerate
        assert 0.05 < analytic < 0.95

        profile = transient_profile(
            net,
            reward=compromised_indicator,
            times=[HORIZON],
            replications=REPLICATIONS,
            seed=20260808,
        )
        successes = round(profile.means[0] * REPLICATIONS)
        low, high = wilson_interval(successes, REPLICATIONS)
        assert low <= analytic <= high, (
            f"sparse-analytic p={analytic:.4f} outside Wilson "
            f"[{low:.4f}, {high:.4f}] from {successes}/{REPLICATIONS}"
        )
        # and the interval is actually discriminating, not vacuous
        assert high - low < 0.2

    def test_time_average_covers_the_sparse_analytic_value(self, fleet_solution):
        net, result = fleet_solution
        analytic = result.expected_reward(compromised_indicator)
        estimate = simulate(
            net,
            reward=compromised_indicator,
            horizon=HORIZON,
            warmup=2_000.0,
            replications=12,
            seed=7,
        )
        assert estimate.covers(analytic), (
            f"sparse-analytic {analytic:.4f} outside simulator CI "
            f"{estimate.interval}"
        )
