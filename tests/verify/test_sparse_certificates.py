"""Certificate gating for iterative (sparse-route) solutions.

A corrupted sparse π — perturbed entry, broken normalization, missing
or dishonest solver record — must fail certification, be refused by the
engine cache, and never be served or stored.
"""

import numpy as np
import pytest

import repro.dspn.steady_state as steady_state_module
from repro.dspn.steady_state import SteadyStateResult, solve_steady_state
from repro.engine.cache import active_cache, cache_override
from repro.engine.hashing import net_fingerprint, solver_cache_key
from repro.errors import VerificationError
from repro.markov.sparse import SparseSolveInfo
from repro.perception.fleet import FleetParameters, build_fleet_net
from repro.petri import NetBuilder
from repro.verify import certify_steady_state


def ring_net(name="sparse-certify-ring", states=6):
    """A small exponential ring — cheap, ergodic, sparse-eligible."""
    builder = NetBuilder(name)
    places = [f"P{i}" for i in range(states)]
    builder.place(places[0], tokens=1)
    for place in places[1:]:
        builder.place(place)
    for i, place in enumerate(places):
        builder.exponential(
            f"t{i}",
            rate=0.2 + 0.3 * i,
            inputs={place: 1},
            outputs={places[(i + 1) % states]: 1},
        )
    return builder.build()


def corrupt(result, pi, *, solver_info="keep"):
    """A copy of ``result`` with ``pi`` (and optionally the record) replaced."""
    return SteadyStateResult(
        markings=result.markings,
        pi=np.asarray(pi, dtype=float),
        method=result.method,
        graph=result.graph,
        solver_info=result.solver_info if solver_info == "keep" else solver_info,
    )


@pytest.fixture()
def sparse_result():
    with cache_override(enabled=False):
        return solve_steady_state(ring_net(), method="sparse", verify=True)


class TestPassingSparseCertificates:
    def test_sparse_certificate_passes(self, sparse_result):
        certificate = sparse_result.certificate
        assert certificate is not None
        assert certificate.passed
        assert certificate.method == "sparse"
        assert {check.name for check in certificate.checks} == {
            "pi-nonnegative",
            "pi-normalized",
            "sparse-balance",
            "sparse-solver-record",
        }

    def test_fleet_scale_certificate_passes(self):
        net = build_fleet_net(FleetParameters.nv15_defaults())
        with cache_override(enabled=False):
            result = solve_steady_state(net, method="sparse", verify=True)
        assert result.certificate is not None
        assert result.certificate.passed
        record = next(
            check
            for check in result.certificate.checks
            if check.name == "sparse-solver-record"
        )
        assert "gmres" in record.detail

    def test_certificate_serializes_the_solver_record(self, sparse_result):
        payload = sparse_result.certificate.to_dict()
        names = [check["name"] for check in payload["checks"]]
        assert "sparse-solver-record" in names


class TestCorruptedSparsePi:
    def test_perturbed_entry_fails_balance(self, sparse_result):
        pi = np.array(sparse_result.pi)
        pi[0] += 0.05
        pi[1] -= 0.05
        certificate = certify_steady_state(corrupt(sparse_result, pi))
        assert not certificate.passed
        assert "sparse-balance" in {c.name for c in certificate.failures()}

    def test_broken_normalization_fails(self, sparse_result):
        certificate = certify_steady_state(
            corrupt(sparse_result, np.array(sparse_result.pi) * 1.01)
        )
        assert not certificate.passed
        assert "pi-normalized" in {c.name for c in certificate.failures()}

    def test_negative_mass_fails(self, sparse_result):
        pi = np.array(sparse_result.pi)
        shift = pi[0] + 0.01
        pi[0] = -0.01
        pi[1] += shift  # keep the sum at 1 so only nonnegativity trips
        certificate = certify_steady_state(corrupt(sparse_result, pi))
        assert "pi-nonnegative" in {c.name for c in certificate.failures()}

    def test_missing_solver_record_fails(self, sparse_result):
        certificate = certify_steady_state(
            corrupt(sparse_result, sparse_result.pi, solver_info=None)
        )
        assert not certificate.passed
        failure = next(
            c for c in certificate.failures() if c.name == "sparse-solver-record"
        )
        assert "no solver record" in failure.detail

    def test_loosened_residual_record_fails(self, sparse_result):
        # a record claiming it accepted a residual above its own bar is
        # a solver that lied about convergence — refuse it
        info = sparse_result.solver_info
        dishonest = SparseSolveInfo(
            solver=info.solver,
            n_states=info.n_states,
            nnz=info.nnz,
            iterations=info.iterations,
            refinements=info.refinements,
            residual=1e-3,
            tolerance=info.tolerance,
            preconditioner=info.preconditioner,
            reordering=info.reordering,
        )
        certificate = certify_steady_state(
            corrupt(sparse_result, sparse_result.pi, solver_info=dishonest)
        )
        assert not certificate.passed
        assert "sparse-solver-record" in {c.name for c in certificate.failures()}


class TestSparseCacheGating:
    def test_poisoned_sparse_entry_is_refused_and_recomputed(self, sparse_result):
        net = ring_net()
        pi = np.array(sparse_result.pi)
        pi[0], pi[-1] = pi[-1], pi[0]
        poisoned = corrupt(sparse_result, pi)
        poisoned.certificate = certify_steady_state(poisoned)
        assert not poisoned.certificate.passed
        with cache_override(enabled=True, directory=None):
            key = solver_cache_key(net, max_states=200_000, method="sparse")
            active_cache().put(key, poisoned)
            served = solve_steady_state(net, method="sparse", verify=True)
        assert served is not poisoned
        assert served.certificate.passed
        np.testing.assert_allclose(served.pi, sparse_result.pi, atol=1e-12)

    def test_uncertified_sparse_entry_is_certified_in_place(self, sparse_result):
        net = ring_net()
        bare = corrupt(sparse_result, sparse_result.pi)
        assert bare.certificate is None
        with cache_override(enabled=True, directory=None):
            key = solver_cache_key(net, max_states=200_000, method="sparse")
            active_cache().put(key, bare)
            served = solve_steady_state(net, method="sparse", verify=True)
        assert served is bare  # upgraded, not recomputed
        assert served.certificate is not None
        assert served.certificate.passed

    def test_fresh_corrupted_solve_raises_and_is_never_cached(
        self, sparse_result, monkeypatch
    ):
        net = ring_net()
        pi = np.array(sparse_result.pi)
        pi[0] += 0.2
        pi[1] -= 0.2

        def corrupted_solve(*args, **kwargs):
            return corrupt(sparse_result, pi)

        monkeypatch.setattr(steady_state_module, "_solve_uncached", corrupted_solve)
        with cache_override(enabled=True, directory=None):
            with pytest.raises(VerificationError, match="sparse-balance"):
                solve_steady_state(net, method="sparse", verify=True)
            key = solver_cache_key(net, max_states=200_000, method="sparse")
            assert active_cache().get(key) is None

    def test_refused_entry_never_reaches_unverified_callers_after_refusal(
        self, sparse_result
    ):
        """After a verified solve refuses a poisoned entry, the cache
        holds the recomputed (passing) result — not the poison."""
        net = ring_net()
        pi = np.array(sparse_result.pi)
        pi[0], pi[-1] = pi[-1], pi[0]
        poisoned = corrupt(sparse_result, pi)
        poisoned.certificate = certify_steady_state(poisoned)
        with cache_override(enabled=True, directory=None):
            key = solver_cache_key(net, max_states=200_000, method="sparse")
            active_cache().put(key, poisoned)
            solve_steady_state(net, method="sparse", verify=True)
            later = solve_steady_state(net, method="sparse")
        assert later is not poisoned
        np.testing.assert_allclose(later.pi, sparse_result.pi, atol=1e-12)
