"""`repro verify --all` must be byte-identical run-to-run and across jobs.

The report is the artifact CI diffs; any nondeterminism (dict ordering,
parallel reassembly order, simulation seeding) would show up here first.
Each run is executed against a fresh in-memory cache so the later runs
cannot trivially replay the first one.
"""

import pytest

from repro.cli import main
from repro.engine.cache import cache_override
from repro.verify import verify_experiments

# a small but representative slice: CTMC-only, MRGP, and explicit-threshold
# nets, so the full report machinery is exercised without the full matrix
SAMPLE_IDS = ["table2-defaults", "ablation-clock", "architectures"]


def fresh_report(**kwargs):
    with cache_override(enabled=True, directory=None):
        return verify_experiments(SAMPLE_IDS, **kwargs).render()


class TestReportStability:
    def test_two_runs_byte_identical(self):
        assert fresh_report(jobs=1) == fresh_report(jobs=1)

    def test_jobs_one_matches_jobs_two(self):
        assert fresh_report(jobs=1) == fresh_report(jobs=2)

    def test_oracles_are_seeded(self):
        # oracle verdicts embed simulation statistics; identical output
        # proves the sequential test consumes fixed seeds, not wall clock
        first = fresh_report(jobs=1, oracles=True)
        second = fresh_report(jobs=2, oracles=True)
        assert first == second


class TestCliStability:
    def run_cli(self, argv, capsys):
        with cache_override(enabled=True, directory=None):
            code = main(argv)
        out = capsys.readouterr().out
        return code, out

    def test_verify_cli_byte_identical(self, capsys):
        argv = ["verify", *SAMPLE_IDS, "--no-oracles", "--no-cache"]
        code_a, out_a = self.run_cli(argv, capsys)
        code_b, out_b = self.run_cli(argv, capsys)
        assert code_a == code_b == 0
        assert out_a == out_b
        assert "PASS" in out_a

    def test_verify_cli_jobs_invariant(self, capsys):
        base = ["verify", *SAMPLE_IDS, "--no-oracles", "--no-cache"]
        _, out_one = self.run_cli([*base, "--jobs", "1"], capsys)
        _, out_two = self.run_cli([*base, "--jobs", "2"], capsys)
        assert out_one == out_two


@pytest.mark.slow
class TestFullMatrixStability:
    def test_all_experiments_byte_identical_across_jobs(self):
        with cache_override(enabled=True, directory=None):
            one = verify_experiments(jobs=1).render()
        with cache_override(enabled=True, directory=None):
            two = verify_experiments(jobs=2).render()
        assert one == two
