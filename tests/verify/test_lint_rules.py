"""One trigger/pass net pair per lint rule id (ISSUE 3, satellite 2).

Every rule in the catalogue gets a minimal net that fires it and a
minimal neighbouring net that does not, so rule regressions localize to
one failing test.
"""

import pytest

from repro.petri import NetBuilder
from repro.verify import LINT_RULES, Severity, lint_net
from repro.verify.lint import LintFinding, LintReport


def live_cycle_net():
    """A tiny healthy net: triggers no rule at all."""
    builder = NetBuilder("live-cycle")
    builder.place("A", tokens=1).place("B")
    builder.exponential("go", rate=1.0, inputs={"A": 1}, outputs={"B": 1})
    builder.exponential("back", rate=2.0, inputs={"B": 1}, outputs={"A": 1})
    return builder.build()


def rules(report, rule):
    return [finding.rule for finding in report.by_rule(rule)]


class TestCleanNet:
    def test_no_findings(self):
        report = lint_net(live_cycle_net())
        assert report.findings == ()
        assert report.ok

    def test_catalogue_covers_all_rules(self):
        assert sorted(LINT_RULES) == [f"V{i:03d}" for i in range(1, 12)]


class TestV001DeadTransition:
    def trigger(self):
        builder = NetBuilder("dead")
        builder.place("A", tokens=1).place("B").place("C")
        builder.exponential("go", rate=1.0, inputs={"A": 1}, outputs={"B": 1})
        builder.exponential("back", rate=1.0, inputs={"B": 1}, outputs={"A": 1})
        # needs a token in C, which nothing ever produces
        builder.exponential("never", rate=1.0, inputs={"C": 1}, outputs={"A": 1})
        return builder.build()

    def test_trigger(self):
        report = lint_net(self.trigger())
        assert [f.element for f in report.by_rule("V001")] == ["never"]
        assert not report.ok

    def test_pass(self):
        assert lint_net(live_cycle_net()).by_rule("V001") == ()


class TestV002RateFailure:
    def trigger(self):
        builder = NetBuilder("zero-rate")
        builder.place("A", tokens=1).place("B")
        builder.exponential(
            "bad", rate=lambda m: 0.0, inputs={"A": 1}, outputs={"B": 1}
        )
        builder.exponential("back", rate=1.0, inputs={"B": 1}, outputs={"A": 1})
        return builder.build()

    def test_trigger(self):
        report = lint_net(self.trigger())
        assert [f.element for f in report.by_rule("V002")] == ["bad"]

    def test_pass_marking_dependent_but_positive(self):
        builder = NetBuilder("ok-rate")
        builder.place("A", tokens=2).place("B")
        builder.exponential(
            "scaled", rate=lambda m: 0.5 * max(m["A"], 1), inputs={"A": 1}, outputs={"B": 1}
        )
        builder.exponential("back", rate=1.0, inputs={"B": 1}, outputs={"A": 1})
        assert lint_net(builder.build()).by_rule("V002") == ()


class TestV003ConflictingClocks:
    def trigger(self):
        builder = NetBuilder("two-clocks")
        builder.place("A", tokens=1).place("B", tokens=1).place("C")
        builder.deterministic("d1", delay=1.0, inputs={"A": 1}, outputs={"C": 1})
        builder.deterministic("d2", delay=2.0, inputs={"B": 1}, outputs={"C": 1})
        builder.exponential("drain", rate=1.0, inputs={"C": 1}, outputs={"A": 1})
        return builder.build()

    def test_trigger(self):
        report = lint_net(self.trigger())
        findings = report.by_rule("V003")
        assert [f.element for f in findings] == ["d1+d2"]
        assert findings[0].severity is Severity.ERROR

    def test_pass_sequential_clocks(self):
        builder = NetBuilder("sequential-clocks")
        builder.place("A", tokens=1).place("B")
        builder.deterministic("d1", delay=1.0, inputs={"A": 1}, outputs={"B": 1})
        builder.deterministic("d2", delay=2.0, inputs={"B": 1}, outputs={"A": 1})
        assert lint_net(builder.build()).by_rule("V003") == ()


class TestV004NeverMarkedPlace:
    def trigger(self):
        builder = NetBuilder("unmarked")
        builder.place("A", tokens=1).place("B").place("Cold")
        builder.exponential(
            "go", rate=1.0, inputs={"A": 1}, outputs={"B": 1},
            inhibitors={"Cold": 1},
        )
        builder.exponential("back", rate=1.0, inputs={"B": 1}, outputs={"A": 1})
        return builder.build()

    def test_trigger(self):
        report = lint_net(self.trigger())
        assert [f.element for f in report.by_rule("V004")] == ["Cold"]

    def test_pass(self):
        assert lint_net(live_cycle_net()).by_rule("V004") == ()


class TestV005Truncation:
    def unbounded(self):
        builder = NetBuilder("unbounded")
        builder.place("A", tokens=1)
        builder.exponential("grow", rate=1.0, inputs={"A": 1}, outputs={"A": 2})
        return builder.build()

    def test_trigger(self):
        report = lint_net(self.unbounded(), max_states=10)
        assert report.truncated
        assert len(report.by_rule("V005")) == 1
        # whole-state-space rules are suppressed under truncation
        for suppressed in ("V001", "V004", "V007", "V009", "V010"):
            assert report.by_rule(suppressed) == ()

    def test_pass_with_budget(self):
        report = lint_net(live_cycle_net(), max_states=10)
        assert not report.truncated
        assert report.by_rule("V005") == ()


class TestV006Disconnected:
    def trigger(self):
        builder = NetBuilder("loose")
        builder.place("A", tokens=1).place("B").place("Island")
        builder.exponential("go", rate=1.0, inputs={"A": 1}, outputs={"B": 1})
        builder.exponential("back", rate=1.0, inputs={"B": 1}, outputs={"A": 1})
        return builder.build()

    def test_trigger(self):
        report = lint_net(self.trigger())
        assert [f.element for f in report.by_rule("V006")] == ["Island"]
        assert report.ok  # warning severity only

    def test_pass(self):
        assert lint_net(live_cycle_net()).by_rule("V006") == ()


class TestV007GuardContradiction:
    def trigger(self):
        builder = NetBuilder("contradiction")
        builder.place("A", tokens=1).place("B")
        builder.immediate(
            "blocked", guard=lambda m: False, inputs={"A": 1}, outputs={"B": 1}
        )
        builder.exponential("cycle", rate=1.0, inputs={"A": 1}, outputs={"A": 1})
        return builder.build()

    def test_trigger(self):
        report = lint_net(self.trigger())
        assert [f.element for f in report.by_rule("V007")] == ["blocked"]
        # the guard contradiction subsumes the dead-transition finding
        assert report.by_rule("V001") == ()

    def test_pass_guard_sometimes_true(self):
        builder = NetBuilder("guarded")
        builder.place("A", tokens=1).place("B")
        builder.exponential("go", rate=1.0, inputs={"A": 1}, outputs={"B": 1})
        builder.immediate(
            "gated", guard=lambda m: m["B"] > 0, inputs={"B": 1}, outputs={"A": 1}
        )
        assert lint_net(builder.build()).by_rule("V007") == ()


class TestV008WeightFailure:
    def trigger(self):
        builder = NetBuilder("zero-weight")
        builder.place("A", tokens=1).place("B")
        builder.immediate(
            "bad", weight=lambda m: 0.0, inputs={"A": 1}, outputs={"B": 1}
        )
        builder.exponential("back", rate=1.0, inputs={"B": 1}, outputs={"A": 1})
        return builder.build()

    def test_trigger(self):
        report = lint_net(self.trigger())
        assert [f.element for f in report.by_rule("V008")] == ["bad"]

    def test_pass_positive_weights(self):
        builder = NetBuilder("weighted")
        builder.place("A", tokens=1).place("B").place("C")
        builder.immediate("w1", weight=1.0, inputs={"A": 1}, outputs={"B": 1})
        builder.immediate("w2", weight=3.0, inputs={"A": 1}, outputs={"C": 1})
        builder.exponential("back1", rate=1.0, inputs={"B": 1}, outputs={"A": 1})
        builder.exponential("back2", rate=1.0, inputs={"C": 1}, outputs={"A": 1})
        assert lint_net(builder.build()).by_rule("V008") == ()


class TestV009Deadlock:
    def trigger(self):
        builder = NetBuilder("absorbing")
        builder.place("A", tokens=1).place("Sink")
        builder.exponential("die", rate=1.0, inputs={"A": 1}, outputs={"Sink": 1})
        return builder.build()

    def test_trigger(self):
        report = lint_net(self.trigger())
        findings = report.by_rule("V009")
        assert len(findings) == 1
        assert findings[0].severity is Severity.INFO
        assert report.ok  # info severity keeps the net lintable

    def test_pass(self):
        assert lint_net(live_cycle_net()).by_rule("V009") == ()


class TestV010VanishingLoop:
    def trigger(self):
        builder = NetBuilder("vanishing-loop")
        builder.place("A", tokens=1).place("B")
        builder.immediate("i1", inputs={"A": 1}, outputs={"B": 1})
        builder.immediate("i2", inputs={"B": 1}, outputs={"A": 1})
        return builder.build()

    def test_trigger(self):
        report = lint_net(self.trigger())
        assert len(report.by_rule("V010")) == 1
        assert not report.ok

    def test_pass_immediates_reach_tangible(self):
        builder = NetBuilder("vanishing-chain")
        builder.place("A", tokens=1).place("B").place("C")
        builder.immediate("i1", inputs={"A": 1}, outputs={"B": 1})
        builder.exponential("slow", rate=1.0, inputs={"B": 1}, outputs={"C": 1})
        builder.exponential("back", rate=1.0, inputs={"C": 1}, outputs={"A": 1})
        assert lint_net(builder.build()).by_rule("V010") == ()


class TestV011NoTokenFlow:
    def trigger(self):
        builder = NetBuilder("flowless")
        builder.place("A", tokens=1).place("B")
        builder.exponential("go", rate=1.0, inputs={"A": 1}, outputs={"B": 1})
        builder.exponential("back", rate=1.0, inputs={"B": 1}, outputs={"A": 1})
        builder.exponential("spin", rate=1.0, inhibitors={"B": 2})
        return builder.build()

    def test_trigger(self):
        report = lint_net(self.trigger())
        assert [f.element for f in report.by_rule("V011")] == ["spin"]

    def test_pass(self):
        assert lint_net(live_cycle_net()).by_rule("V011") == ()


class TestReportRendering:
    def test_render_is_deterministic(self):
        net = TestV001DeadTransition().trigger()
        assert lint_net(net).render() == lint_net(net).render()

    def test_findings_sorted_by_rule_then_element(self):
        builder = NetBuilder("multi")
        builder.place("A", tokens=1).place("B").place("Zed").place("Cold")
        builder.exponential("go", rate=1.0, inputs={"A": 1}, outputs={"B": 1})
        builder.exponential("back", rate=1.0, inputs={"B": 1}, outputs={"A": 1})
        builder.exponential("never", rate=1.0, inputs={"Cold": 1}, outputs={"A": 1})
        report = lint_net(builder.build())
        assert [f.rule for f in report.findings] == sorted(
            f.rule for f in report.findings
        )

    def test_finding_render_mentions_rule_and_element(self):
        finding = LintFinding("V001", Severity.ERROR, "t", "dead")
        assert "V001" in finding.render()
        assert "t" in finding.render()

    def test_report_properties(self):
        report = LintReport(
            net_name="n",
            n_markings=3,
            truncated=False,
            findings=(
                LintFinding("V001", Severity.ERROR, "t", "dead"),
                LintFinding("V006", Severity.WARNING, "p", "loose"),
            ),
        )
        assert len(report.errors) == 1
        assert len(report.warnings) == 1
        assert not report.ok
