"""Certificate checks: passing solves, hand-corrupted π, cache refusal."""

import numpy as np
import pytest

from repro.dspn.steady_state import SteadyStateResult, solve_steady_state
from repro.engine.cache import active_cache, cache_override
from repro.engine.hashing import net_fingerprint, solver_cache_key
from repro.errors import ParameterError, VerificationError
from repro.petri import NetBuilder
from repro.verify import (
    CERTIFICATE_VERSION,
    Certificate,
    certify_expected_reward,
    certify_steady_state,
)


def cycle_net(name="certify-cycle"):
    builder = NetBuilder(name)
    builder.place("A", tokens=2).place("B")
    builder.exponential("go", rate=0.3, inputs={"A": 1}, outputs={"B": 1})
    builder.exponential("back", rate=1.1, inputs={"B": 1}, outputs={"A": 1})
    return builder.build()


def clocked_net(name="certify-clock"):
    builder = NetBuilder(name)
    builder.place("A", tokens=1).place("B")
    builder.deterministic("tick", delay=2.0, inputs={"A": 1}, outputs={"B": 1})
    builder.exponential("back", rate=0.7, inputs={"B": 1}, outputs={"A": 1})
    return builder.build()


def corrupt(result, pi):
    """A copy of ``result`` with ``pi`` replaced by a corrupted vector."""
    return SteadyStateResult(
        markings=result.markings,
        pi=np.asarray(pi, dtype=float),
        method=result.method,
        graph=result.graph,
    )


class TestPassingCertificates:
    def test_ctmc_certificate_passes(self):
        with cache_override(enabled=False):
            result = solve_steady_state(cycle_net(), verify=True)
        certificate = result.certificate
        assert certificate is not None
        assert certificate.passed
        assert certificate.method == "ctmc"
        assert certificate.max_residual < 1e-9
        assert {check.name for check in certificate.checks} == {
            "pi-nonnegative",
            "pi-normalized",
            "ctmc-balance",
        }

    def test_mrgp_certificate_passes(self):
        with cache_override(enabled=False):
            result = solve_steady_state(clocked_net(), verify=True)
        certificate = result.certificate
        assert certificate.passed
        assert certificate.method == "mrgp"
        assert {check.name for check in certificate.checks} == {
            "pi-nonnegative",
            "pi-normalized",
            "mrgp-embedded-fixed-point",
            "mrgp-renewal",
        }

    def test_verify_off_attaches_nothing(self):
        with cache_override(enabled=False):
            result = solve_steady_state(cycle_net())
        assert result.certificate is None

    def test_custom_tolerance_recorded(self):
        with cache_override(enabled=False):
            result = solve_steady_state(cycle_net(), verify=1e-6)
        assert result.certificate.tolerance == 1e-6

    def test_invalid_verify_arguments_rejected(self):
        for bad in (0.0, -1e-9, "tight"):
            with pytest.raises(ParameterError):
                solve_steady_state(cycle_net(), verify=bad)

    def test_round_trips_to_dict(self):
        with cache_override(enabled=False):
            result = solve_steady_state(cycle_net(), verify=True)
        payload = result.certificate.to_dict()
        assert payload["passed"] is True
        assert payload["version"] == CERTIFICATE_VERSION
        assert len(payload["checks"]) == 3


class TestCorruptedPi:
    def solved(self):
        with cache_override(enabled=False):
            return solve_steady_state(cycle_net(), verify=True)

    def test_negative_mass_fails(self):
        result = self.solved()
        pi = result.pi.copy()
        pi[0], pi[1] = -pi[0], pi[1] + 2 * pi[0]  # keep the sum at one
        certificate = certify_steady_state(corrupt(result, pi))
        assert not certificate.passed
        assert "pi-nonnegative" in {c.name for c in certificate.failures()}

    def test_unnormalized_fails(self):
        result = self.solved()
        certificate = certify_steady_state(corrupt(result, result.pi * 1.5))
        assert "pi-normalized" in {c.name for c in certificate.failures()}

    def test_balance_violation_fails(self):
        result = self.solved()
        pi = result.pi.copy()
        pi[0], pi[-1] = pi[-1], pi[0]  # permuted mass: normalized but wrong
        certificate = certify_steady_state(corrupt(result, pi))
        assert "ctmc-balance" in {c.name for c in certificate.failures()}

    def test_mrgp_corruption_fails(self):
        with cache_override(enabled=False):
            result = solve_steady_state(clocked_net(), verify=True)
        pi = result.pi.copy()
        pi[0], pi[-1] = pi[-1], pi[0]
        certificate = certify_steady_state(corrupt(result, pi))
        assert "mrgp-renewal" in {c.name for c in certificate.failures()}

    def test_unknown_method_fails(self):
        result = self.solved()
        bad = SteadyStateResult(
            markings=result.markings,
            pi=result.pi,
            method="quantum",
            graph=result.graph,
        )
        certificate = certify_steady_state(bad)
        assert "known-method" in {c.name for c in certificate.failures()}

    def test_staleness_on_version_and_fingerprint(self):
        certificate = certify_steady_state(
            self.solved(), fingerprint="abc", tolerance=1e-9
        )
        assert certificate.is_current("abc")
        assert not certificate.is_current("other")
        stale = Certificate(
            fingerprint="abc",
            method="ctmc",
            n_states=1,
            tolerance=1e-9,
            checks=(),
            version=CERTIFICATE_VERSION - 1,
        )
        assert not stale.is_current("abc")


class TestRewardCertificates:
    def test_bounds_and_recomputation_pass(self):
        with cache_override(enabled=False):
            result = solve_steady_state(cycle_net(), verify=True)
        reward = lambda marking: float(marking["A"])
        value = result.expected_reward(reward)
        checks = certify_expected_reward(result, reward, value)
        assert all(check.passed for check in checks)

    def test_out_of_bounds_value_fails(self):
        with cache_override(enabled=False):
            result = solve_steady_state(cycle_net(), verify=True)
        reward = lambda marking: float(marking["A"])
        checks = certify_expected_reward(result, reward, 99.0)
        names = {check.name for check in checks if not check.passed}
        assert names == {"reward-bounds", "reward-recomputation"}


class TestCacheRefusal:
    def test_corrupted_cache_entry_is_refused_and_recomputed(self):
        net = cycle_net("certify-refusal")
        with cache_override(enabled=True, directory=None):
            good = solve_steady_state(net, verify=True)
            cache = active_cache()
            key = solver_cache_key(net, max_states=200_000, method="auto")
            assert cache.get(key) is good

            # poison the cache: permuted pi, stamped with a *passing-looking*
            # but failing certificate after re-check
            pi = good.pi.copy()
            pi[0], pi[-1] = pi[-1], pi[0]
            poisoned = corrupt(good, pi)
            poisoned.certificate = certify_steady_state(
                poisoned, fingerprint=net_fingerprint(net)
            )
            assert not poisoned.certificate.passed
            cache.put(key, poisoned)

            served = solve_steady_state(net, verify=True)
            assert served is not poisoned
            assert served.certificate.passed
            np.testing.assert_allclose(served.pi, good.pi)
            # the refused entry was replaced by the verified recomputation
            assert cache.get(key) is served

    def test_uncertified_entry_is_certified_in_place(self):
        net = cycle_net("certify-upgrade")
        with cache_override(enabled=True, directory=None):
            plain = solve_steady_state(net)  # no certificate attached
            assert plain.certificate is None
            served = solve_steady_state(net, verify=True)
            assert served is plain  # same entry, upgraded in place
            assert served.certificate is not None
            assert served.certificate.passed

    def test_stale_fingerprint_triggers_recertification(self):
        net = cycle_net("certify-stale")
        with cache_override(enabled=True, directory=None):
            good = solve_steady_state(net, verify=True)
            good.certificate = Certificate(
                fingerprint="not-this-net",
                method=good.certificate.method,
                n_states=good.certificate.n_states,
                tolerance=good.certificate.tolerance,
                checks=good.certificate.checks,
            )
            served = solve_steady_state(net, verify=True)
            assert served.certificate.fingerprint == net_fingerprint(net)
            assert served.certificate.passed

    def test_fresh_failing_solve_raises_verification_error(self, monkeypatch):
        # a freshly computed solution that fails its certificate must
        # raise (and never be cached), not be returned silently
        import repro.dspn.steady_state as module

        original = module._solve_uncached

        def corrupted_solve(net, *, max_states, method):
            result = original(net, max_states=max_states, method=method)
            pi = result.pi.copy()
            pi[0], pi[-1] = pi[-1], pi[0]
            return corrupt(result, pi)

        monkeypatch.setattr(module, "_solve_uncached", corrupted_solve)
        net = cycle_net("certify-fresh-failure")
        with cache_override(enabled=True, directory=None):
            with pytest.raises(VerificationError, match="failed certification"):
                solve_steady_state(net, verify=True)
            key = solver_cache_key(net, max_states=200_000, method="auto")
            assert active_cache().get(key) is None
