"""Tests for BFT voting schemes."""

import pytest

from repro.errors import ParameterError
from repro.nversion.voting import (
    VotingScheme,
    bft_minimum_modules,
    bft_rejuvenation_minimum_modules,
)


class TestMinimumModules:
    def test_castro_liskov_bound(self):
        assert bft_minimum_modules(1) == 4
        assert bft_minimum_modules(2) == 7

    def test_sousa_bound(self):
        assert bft_rejuvenation_minimum_modules(1, 1) == 6
        assert bft_rejuvenation_minimum_modules(2, 1) == 9
        assert bft_rejuvenation_minimum_modules(1, 2) == 8


class TestConstructors:
    def test_bft_threshold(self):
        scheme = VotingScheme.bft(1)
        assert scheme.n_modules == 4
        assert scheme.threshold == 3

    def test_bft_with_more_modules(self):
        scheme = VotingScheme.bft(1, n_modules=5)
        assert scheme.n_modules == 5
        assert scheme.threshold == 3

    def test_bft_rejects_too_few(self):
        with pytest.raises(ParameterError, match="n >= 4"):
            VotingScheme.bft(1, n_modules=3)

    def test_bft_rejuvenation_threshold(self):
        scheme = VotingScheme.bft_with_rejuvenation(1, 1)
        assert scheme.n_modules == 6
        assert scheme.threshold == 4

    def test_bft_rejuvenation_rejects_too_few(self):
        with pytest.raises(ParameterError):
            VotingScheme.bft_with_rejuvenation(1, 1, n_modules=5)

    def test_majority(self):
        assert VotingScheme.majority(3).threshold == 2
        assert VotingScheme.majority(4).threshold == 3
        assert VotingScheme.majority(5).threshold == 3

    def test_unanimity(self):
        assert VotingScheme.unanimity(5).threshold == 5

    def test_threshold_above_modules_rejected(self):
        with pytest.raises(ParameterError):
            VotingScheme(name="x", n_modules=3, threshold=4)


class TestClassify:
    @pytest.fixture
    def scheme(self):
        return VotingScheme.bft(1)  # 3-out-of-4

    def test_correct(self, scheme):
        assert scheme.classify(correct=3, incorrect=1) == "correct"

    def test_error(self, scheme):
        assert scheme.classify(correct=1, incorrect=3) == "error"

    def test_inconclusive(self, scheme):
        assert scheme.classify(correct=2, incorrect=2) == "inconclusive"

    def test_missing_votes_can_force_inconclusive(self, scheme):
        assert scheme.classify(correct=2, incorrect=0) == "inconclusive"

    def test_too_many_votes_rejected(self, scheme):
        with pytest.raises(ParameterError):
            scheme.classify(correct=3, incorrect=2)

    def test_can_reach_threshold(self, scheme):
        assert scheme.can_reach_threshold(3)
        assert not scheme.can_reach_threshold(2)
