"""Tests for the failure models (Ege dependent, independent, binomial)."""

import math

import pytest

from repro.errors import ParameterError
from repro.nversion.failure_models import (
    CompromisedBinomialModel,
    EgeDependentModel,
    IndependentHealthyModel,
)


class TestEgePaperVariant:
    """paper_combinatorics=True reproduces the appendix coefficients."""

    @pytest.fixture
    def model(self):
        return EgeDependentModel(p=0.08, alpha=0.5)

    def test_all_fail_of_four(self, model):
        # R_{4,0,0} first term: p * alpha^3
        assert math.isclose(model.probability_exactly(4, 4), 0.08 * 0.5**3)

    def test_three_of_four(self, model):
        # R_{4,0,0} second term: 4 p alpha^2 (1-alpha)
        assert math.isclose(
            model.probability_exactly(3, 4), 4 * 0.08 * 0.5**2 * 0.5
        )

    def test_at_least_one_is_p(self, model):
        assert model.probability_at_least(1, 3) == 0.08
        assert model.probability_at_least(1, 6) == 0.08

    def test_zero_failures(self, model):
        assert model.probability_exactly(0, 4) == 1.0 - 0.08

    def test_more_failures_than_group(self, model):
        assert model.probability_exactly(5, 4) == 0.0
        assert model.probability_at_least(5, 4) == 0.0

    def test_empty_group(self, model):
        assert model.probability_exactly(0, 0) == 1.0
        assert model.probability_exactly(1, 0) == 0.0

    def test_six_version_coefficients(self, model):
        # R_{6,0,0} terms: C(6,6)=1, C(6,5)=6, C(6,4)=15
        p, a = 0.08, 0.5
        assert math.isclose(model.probability_exactly(6, 6), p * a**5)
        assert math.isclose(model.probability_exactly(5, 6), 6 * p * a**4 * (1 - a))
        assert math.isclose(
            model.probability_exactly(4, 6), 15 * p * a**3 * (1 - a) ** 2
        )


class TestEgeNormalizedVariant:
    @pytest.fixture
    def model(self):
        return EgeDependentModel(p=0.1, alpha=0.3, paper_combinatorics=False)

    def test_distribution_sums_to_one(self, model):
        for group in (1, 2, 4, 6):
            total = sum(model.probability_exactly(m, group) for m in range(group + 1))
            assert math.isclose(total, 1.0, rel_tol=1e-12)

    def test_tail_consistent_with_exact(self, model):
        tail = model.probability_at_least(2, 5)
        direct = sum(model.probability_exactly(m, 5) for m in range(2, 6))
        assert math.isclose(tail, direct)

    def test_alpha_one_all_or_nothing(self):
        model = EgeDependentModel(p=0.2, alpha=1.0, paper_combinatorics=False)
        assert math.isclose(model.probability_exactly(4, 4), 0.2)
        assert model.probability_exactly(2, 4) == 0.0

    def test_alpha_zero_single_failure(self):
        model = EgeDependentModel(p=0.2, alpha=0.0, paper_combinatorics=False)
        assert math.isclose(model.probability_exactly(1, 4), 0.2)
        assert model.probability_exactly(2, 4) == 0.0


class TestIndependentModel:
    def test_binomial(self):
        model = IndependentHealthyModel(p=0.5)
        assert math.isclose(model.probability_exactly(1, 2), 0.5)
        assert math.isclose(model.probability_exactly(2, 2), 0.25)

    def test_at_least(self):
        model = IndependentHealthyModel(p=0.5)
        assert math.isclose(model.probability_at_least(1, 2), 0.75)


class TestCompromisedModel:
    def test_matches_binomial(self):
        model = CompromisedBinomialModel(p_prime=0.5)
        assert math.isclose(model.probability_exactly(2, 3), 3 * 0.125)

    def test_at_least_zero_is_one(self):
        model = CompromisedBinomialModel(p_prime=0.3)
        assert math.isclose(model.probability_at_least(0, 3), 1.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            CompromisedBinomialModel(p_prime=1.5)


class TestValidation:
    def test_invalid_probability_rejected(self):
        with pytest.raises(ParameterError):
            EgeDependentModel(p=-0.1, alpha=0.5)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ParameterError):
            EgeDependentModel(p=0.1, alpha=1.5)

    def test_negative_failures_rejected(self):
        model = EgeDependentModel(p=0.1, alpha=0.5)
        with pytest.raises(ParameterError):
            model.probability_exactly(-1, 4)
