"""Tests for the per-state reliability functions R_{i,j,k}."""

import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.nversion.conventions import OutputConvention
from repro.nversion.reliability import (
    GeneralizedReliability,
    PaperFourVersionReliability,
    PaperSixVersionReliability,
    reliability_matrix,
)

P, PP, A = 0.08, 0.5, 0.5


class TestPaperFourVersion:
    @pytest.fixture
    def r(self):
        return PaperFourVersionReliability(p=P, p_prime=PP, alpha=A)

    def test_appendix_a_values(self, r):
        """Hand-computed values of every Appendix A formula at defaults."""
        assert math.isclose(r(4, 0, 0), 1 - (P * A**3 + 4 * P * A**2 * (1 - A)))
        assert math.isclose(r(3, 1, 0), 1 - (P * A**2 + 3 * P * A * (1 - A) * PP))
        assert math.isclose(r(3, 0, 1), 1 - P * A**2)
        assert math.isclose(r(2, 2, 0), 1 - (P * PP**2 + 2 * P * A * PP * (1 - PP)))
        assert math.isclose(r(2, 1, 1), 1 - P * A * PP)
        assert math.isclose(r(1, 3, 0), 1 - (PP**3 + 3 * P * PP**2 * (1 - PP)))
        assert math.isclose(r(1, 2, 1), 1 - P * PP**2)
        assert math.isclose(r(0, 4, 0), 1 - (PP**4 + 3 * PP**3 * (1 - PP)))
        assert math.isclose(r(0, 3, 1), 1 - PP**3)

    def test_default_numeric_values(self, r):
        assert math.isclose(r(4, 0, 0), 0.95)
        assert math.isclose(r(1, 3, 0), 0.845)
        assert math.isclose(r(0, 4, 0), 0.75)

    def test_k_above_budget_is_zero(self, r):
        assert r(2, 0, 2) == 0.0
        assert r(0, 0, 4) == 0.0

    def test_invalid_state_sum_rejected(self, r):
        with pytest.raises(ParameterError):
            r(4, 1, 0)

    def test_all_values_are_probabilities(self, r):
        for i in range(5):
            for j in range(5 - i):
                value = r(i, j, 4 - i - j)
                assert 0.0 <= value <= 1.0


class TestPaperSixVersion:
    @pytest.fixture
    def r(self):
        return PaperSixVersionReliability(p=P, p_prime=PP, alpha=A)

    def test_selected_appendix_b_values(self, r):
        assert math.isclose(
            r(6, 0, 0),
            1 - (P * A**5 + 6 * P * A**4 * (1 - A) + 15 * P * A**3 * (1 - A) ** 2),
        )
        assert math.isclose(r(4, 0, 2), 1 - P * A**3)
        assert math.isclose(r(2, 2, 2), 1 - P * A * PP**2)
        assert math.isclose(r(0, 4, 2), 1 - PP**4)
        assert math.isclose(
            r(0, 6, 0),
            1 - (PP**6 + 6 * PP**5 * (1 - PP) + 15 * PP**4 * (1 - PP) ** 2),
        )

    def test_default_numeric_values(self, r):
        assert math.isclose(r(6, 0, 0), 0.945)
        assert math.isclose(r(0, 6, 0), 0.65625)

    def test_k_above_budget_is_zero(self, r):
        assert r(3, 0, 3) == 0.0
        assert r(0, 0, 6) == 0.0

    def test_corrected_mode_fixes_r240_duplicate(self):
        verbatim = PaperSixVersionReliability(p=P, p_prime=PP, alpha=A)
        corrected = PaperSixVersionReliability(
            p=P, p_prime=PP, alpha=A, corrected=True
        )
        # the duplicated 2p(1-a)q^4 term makes the verbatim error larger
        assert corrected(2, 4, 0) > verbatim(2, 4, 0)
        assert math.isclose(
            corrected(2, 4, 0) - verbatim(2, 4, 0), 2 * P * (1 - A) * PP**4
        )

    def test_corrected_mode_adds_r420_term(self):
        verbatim = PaperSixVersionReliability(p=P, p_prime=PP, alpha=A)
        corrected = PaperSixVersionReliability(
            p=P, p_prime=PP, alpha=A, corrected=True
        )
        assert math.isclose(
            verbatim(4, 2, 0) - corrected(4, 2, 0), P * A**3 * (1 - PP) ** 2
        )

    def test_all_values_are_probabilities(self, r):
        for i in range(7):
            for j in range(7 - i):
                value = r(i, j, 6 - i - j)
                assert 0.0 <= value <= 1.0


class TestGeneralized:
    def make(self, convention=OutputConvention.SAFE_SKIP, **kw):
        defaults = dict(n_modules=4, threshold=3, p=P, p_prime=PP, alpha=A)
        defaults.update(kw)
        return GeneralizedReliability(convention=convention, **defaults)

    def test_insufficient_operational_is_zero(self):
        r = self.make()
        assert r(1, 1, 2) == 0.0
        assert r(2, 0, 2) == 0.0

    def test_pure_compromised_binomial_tail(self):
        r = self.make()
        # (0, 4, 0): error iff >= 3 of 4 compromised wrong
        expected_error = sum(
            math.comb(4, m) * PP**m * (1 - PP) ** (4 - m) for m in (3, 4)
        )
        assert math.isclose(r(0, 4, 0), 1 - expected_error)

    def test_k_equal_one_pure_compromised(self):
        r = self.make()
        # (0, 3, 1): error iff all 3 wrong
        assert math.isclose(r(0, 3, 1), 1 - PP**3)

    def test_agrees_with_paper_where_formulas_are_clean(self):
        """States like (3,0,1) and (1,2,1) have unambiguous enumerations."""
        paper = PaperFourVersionReliability(p=P, p_prime=PP, alpha=A)
        general = self.make()
        assert math.isclose(general(0, 3, 1), paper(0, 3, 1))
        assert math.isclose(general(1, 2, 1), paper(1, 2, 1))

    def test_strict_correct_leq_safe_skip(self):
        safe = self.make()
        strict = self.make(convention=OutputConvention.STRICT_CORRECT)
        for i in range(5):
            for j in range(5 - i):
                assert strict(i, j, 4 - i - j) <= safe(i, j, 4 - i - j) + 1e-12

    def test_strict_correct_pure_healthy(self):
        strict = self.make(convention=OutputConvention.STRICT_CORRECT)
        # (4,0,0): correct iff <= 1 healthy wrong
        # normalized model: P(0)=1-p; P(1)=p*C(3,0)*a^0*(1-a)^3
        expected = (1 - P) + P * (1 - A) ** 3
        assert math.isclose(strict(4, 0, 0), expected)

    def test_perfect_modules_give_reliability_one(self):
        r = self.make(p=0.0, p_prime=0.0)
        assert r(4, 0, 0) == 1.0
        assert r(2, 2, 0) == 1.0

    def test_threshold_validation(self):
        with pytest.raises(ParameterError):
            GeneralizedReliability(n_modules=3, threshold=4, p=P, p_prime=PP, alpha=A)

    def test_six_version_configuration(self):
        r = GeneralizedReliability(
            n_modules=6, threshold=4, p=P, p_prime=PP, alpha=A
        )
        assert r(2, 1, 3) == 0.0  # only 3 operational, below threshold
        assert 0.0 < r(4, 2, 0) <= 1.0


class TestReliabilityMatrix:
    def test_shape_and_nan_pattern(self):
        r = PaperFourVersionReliability(p=P, p_prime=PP, alpha=A)
        matrix = reliability_matrix(r)
        assert matrix.shape == (5, 5)
        assert np.isnan(matrix[4, 1])  # i + j > N infeasible
        assert not np.isnan(matrix[4, 0])

    def test_matches_function(self):
        r = PaperFourVersionReliability(p=P, p_prime=PP, alpha=A)
        matrix = reliability_matrix(r)
        assert matrix[3, 1] == r(3, 1, 0)
        assert matrix[0, 3] == r(0, 3, 1)
