"""Tests for the Chrome trace-event and OpenMetrics exporters."""

from __future__ import annotations

import json
import re

import pytest

from repro.cli import main
from repro.obs import (
    ManualClock,
    MetricsRegistry,
    chrome_trace,
    metric_name,
    openmetrics,
    tracing,
)
from repro.obs.export import SUMMARY_QUANTILES, process_label

# ----------------------------------------------------------------------
# validators (strict on purpose: the acceptance criteria are the format)
# ----------------------------------------------------------------------

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_FLOAT = r"[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?"
_TYPE_LINE = re.compile(rf"^# TYPE ({_NAME}) (counter|gauge|summary)$")
_SAMPLE_LINE = re.compile(
    rf"^({_NAME})(?:\{{quantile=\"{_FLOAT}\"\}})? ({_FLOAT})$"
)


def assert_valid_openmetrics(text: str) -> dict[str, str]:
    """Line-format validator; returns ``{family: type}``."""
    lines = text.splitlines()
    assert text.endswith("\n"), "exposition must end with a newline"
    assert lines[-1] == "# EOF", "exposition must terminate with # EOF"
    families: dict[str, str] = {}
    for line in lines[:-1]:
        type_match = _TYPE_LINE.match(line)
        if type_match:
            name, kind = type_match.groups()
            assert name not in families, f"duplicate family {name}"
            families[name] = kind
            continue
        sample_match = _SAMPLE_LINE.match(line)
        assert sample_match, f"malformed line: {line!r}"
        sample = sample_match.group(1)
        owner = next(
            (
                family
                for family in families
                if sample == family or sample.startswith(family + "_")
            ),
            None,
        )
        assert owner, f"sample {sample!r} precedes its # TYPE line"
    return families


def assert_valid_chrome_trace(payload: dict) -> list[dict]:
    """Schema check for the trace-event JSON object format."""
    assert set(payload) >= {"traceEvents", "displayTimeUnit"}
    events = payload["traceEvents"]
    assert isinstance(events, list) and events
    for event in events:
        assert event["ph"] in ("X", "M"), event
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        if event["ph"] == "M":
            assert event["name"] == "process_name"
            assert isinstance(event["args"]["name"], str)
        else:
            assert isinstance(event["name"], str)
            assert event["cat"] == "repro"
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float))
            assert event["dur"] >= 0
            assert isinstance(event["args"], dict)
            assert event["args"]["status"] in ("ok", "error")
    json.dumps(payload)  # round-trippable throughout
    return events


# ----------------------------------------------------------------------
# chrome_trace
# ----------------------------------------------------------------------
class TestChromeTrace:
    def _traced(self):
        with tracing(clock=ManualClock()) as tracer:
            from repro.obs import span

            with span("outer", label="x") as sp:
                sp.set(states=7)
                with span("inner"):
                    pass
        return tracer

    def test_schema_and_content(self):
        payload = chrome_trace(self._traced(), unit="ticks")
        events = assert_valid_chrome_trace(payload)
        spans = [event for event in events if event["ph"] == "X"]
        assert [event["name"] for event in spans] == ["outer", "inner"]
        outer = spans[0]
        assert outer["args"]["label"] == "x"  # attrs exported
        assert outer["args"]["states"] == 7  # measures exported
        assert outer["dur"] > 0

    def test_manifest_rides_in_other_data(self):
        payload = chrome_trace(
            self._traced(), unit="ticks", manifest={"git_sha": "abc"}
        )
        assert payload["otherData"]["manifest"] == {"git_sha": "abc"}

    def test_seconds_scale_to_microseconds(self):
        tracer = self._traced()
        ticks = chrome_trace(tracer, unit="ticks")["traceEvents"]
        seconds = chrome_trace(tracer, unit="s")["traceEvents"]
        tick_span = next(e for e in ticks if e["ph"] == "X")
        second_span = next(e for e in seconds if e["ph"] == "X")
        assert second_span["dur"] == pytest.approx(tick_span["dur"] * 1e6)

    def test_unknown_unit_rejected(self):
        with pytest.raises(ValueError, match="unknown trace unit"):
            chrome_trace([], unit="fortnights")

    def test_process_metadata_one_per_lane(self):
        tracer = self._traced()
        for record in tracer.records:
            record.process = 2
        payload = chrome_trace(tracer, unit="ticks")
        metadata = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert [m["pid"] for m in metadata] == [2]
        assert metadata[0]["args"]["name"] == process_label(2)
        assert process_label(0) == "main"
        assert process_label(3) == "sweep-worker-3"


# ----------------------------------------------------------------------
# openmetrics
# ----------------------------------------------------------------------
class TestOpenMetrics:
    def test_valid_and_complete(self):
        registry = MetricsRegistry()
        registry.counter("engine.cache.hits").inc(3)
        registry.gauge("sweep.jobs").set(4)
        for value in (0.5, 2.0, 8.0):
            registry.histogram("markov.residual").observe(value)
        text = openmetrics(registry)
        families = assert_valid_openmetrics(text)
        assert families == {
            "repro_engine_cache_hits": "counter",
            "repro_sweep_jobs": "gauge",
            "repro_markov_residual": "summary",
        }
        assert "repro_engine_cache_hits_total 3.0" in text
        assert "repro_markov_residual_count 3" in text
        assert "repro_markov_residual_sum 10.5" in text
        for quantile in SUMMARY_QUANTILES:
            assert f'repro_markov_residual{{quantile="{quantile}"}}' in text

    def test_p99_quantile_is_exported_and_merge_stable(self):
        """p99 must be identical whether observations arrive in one
        registry or sharded across workers and merged (the log2-bucket
        quantile is a pure function of the merged bucket vector)."""
        assert 0.99 in SUMMARY_QUANTILES
        values = [0.001 * (i % 7 + 1) * (2 ** (i % 11)) for i in range(500)]
        single = MetricsRegistry()
        shard_a, shard_b = MetricsRegistry(), MetricsRegistry()
        for index, value in enumerate(values):
            single.histogram("serve.request.seconds").observe(value)
            shard = shard_a if index % 2 == 0 else shard_b
            shard.histogram("serve.request.seconds").observe(value)
        merged = MetricsRegistry()
        merged.merge(shard_a.snapshot())
        merged.merge(shard_b.snapshot())
        assert merged.histogram("serve.request.seconds").quantile(
            0.99
        ) == single.histogram("serve.request.seconds").quantile(0.99)
        line = 'repro_serve_request_seconds{quantile="0.99"}'
        single_line = next(
            l for l in openmetrics(single).splitlines() if l.startswith(line)
        )
        merged_line = next(
            l for l in openmetrics(merged).splitlines() if l.startswith(line)
        )
        assert single_line == merged_line
        assert_valid_openmetrics(openmetrics(merged))

    def test_empty_registry_is_just_eof(self):
        assert openmetrics(MetricsRegistry()) == "# EOF\n"
        assert_valid_openmetrics(openmetrics(MetricsRegistry()))

    def test_empty_histogram_has_no_quantile_samples(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        text = openmetrics(registry)
        assert_valid_openmetrics(text)
        assert "quantile" not in text
        assert "repro_h_count 0" in text

    def test_name_sanitization(self):
        assert metric_name("engine.cache.hits") == "repro_engine_cache_hits"
        assert metric_name("weird-name x") == "repro_weird_name_x"

    def test_sanitization_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc()
        registry.counter("a-b").inc()
        with pytest.raises(ValueError, match="both export as"):
            openmetrics(registry)

    def test_non_finite_value_raises(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(float("nan"))
        with pytest.raises(ValueError, match="non-finite"):
            openmetrics(registry)


# ----------------------------------------------------------------------
# CLI acceptance: repro trace --export chrome / --metrics
# ----------------------------------------------------------------------
class TestTraceExportCli:
    def test_chrome_export_has_distinct_worker_pids(self, tmp_path):
        out = tmp_path / "trace.json"
        code = main(
            [
                "trace",
                "table2-defaults",
                "--jobs",
                "4",
                "--manual-clock",
                "--export",
                "chrome",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        events = assert_valid_chrome_trace(payload)
        pids = {event["pid"] for event in events if event["ph"] == "X"}
        assert 0 in pids, "the main process must appear"
        assert len(pids) > 1, "worker spans must land on distinct pids"
        assert (
            payload["otherData"]["manifest"]["experiment"] == "table2-defaults"
        )

    def test_metrics_dump_is_valid_openmetrics(self, tmp_path, capsys):
        prom = tmp_path / "metrics.prom"
        code = main(
            [
                "trace",
                "table2-defaults",
                "--manual-clock",
                "--json",
                "--out",
                str(tmp_path / "trace.json"),
                "--metrics",
                str(prom),
            ]
        )
        assert code == 0
        families = assert_valid_openmetrics(prom.read_text())
        assert "repro_statespace_states_explored" in families

    def test_export_and_json_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["trace", "table2-defaults", "--json", "--export", "chrome"])
