"""Tests of run-provenance manifests."""

from __future__ import annotations

import json
import sys

from repro.engine import cache_override
from repro.obs import ManualClock, RunManifest, collect_manifest, use_clock


class TestCollectManifest:
    def test_records_environment_and_workload(self):
        manifest = collect_manifest(
            experiment="table2-defaults",
            parameters={"p": 0.1},
            seed=2023,
            jobs=4,
        )
        assert manifest.experiment == "table2-defaults"
        assert manifest.parameters == {"p": 0.1}
        assert manifest.seed == 2023
        assert manifest.jobs == 4
        assert manifest.python_version == sys.version.split()[0]
        assert manifest.numpy_version
        assert manifest.platform
        assert manifest.git_sha is None or len(manifest.git_sha) == 40

    def test_reflects_cache_policy(self, tmp_path):
        with cache_override(enabled=True, directory=tmp_path, maxsize=7):
            manifest = collect_manifest()
        assert manifest.cache_policy["directory"] == str(tmp_path)
        assert manifest.cache_policy["maxsize"] == 7

    def test_reflects_clock_kind(self):
        assert collect_manifest().clock == "monotonic"
        with use_clock(ManualClock()):
            assert collect_manifest().clock == "manual"

    def test_is_reproducible_within_a_configuration(self):
        """No timestamps: two collections in one state are identical."""
        first = collect_manifest(experiment="fig3")
        second = collect_manifest(experiment="fig3")
        assert first == second
        assert json.dumps(first.as_dict(), sort_keys=True) == json.dumps(
            second.as_dict(), sort_keys=True
        )

    def test_as_dict_is_json_serializable_and_complete(self):
        data = collect_manifest(experiment="fig3").as_dict()
        assert json.loads(json.dumps(data)) == data
        assert set(data) == {
            "experiment",
            "parameters",
            "seed",
            "jobs",
            "git_sha",
            "python_version",
            "numpy_version",
            "platform",
            "cache_policy",
            "clock",
            "solver_routing",
            "detectors",
        }
        assert data["solver_routing"]["sparse_state_threshold"] > 0
        assert "decisions" in data["solver_routing"]
        assert data["detectors"] == []

    def test_detector_certificates_travel_in_the_manifest(self):
        from repro.obs.watch import WatchConfig, Watcher

        certificates = Watcher(WatchConfig(target=0.99)).certificates()
        data = collect_manifest(detectors=certificates).as_dict()
        assert json.loads(json.dumps(data)) == data
        kinds = [certificate["kind"] for certificate in data["detectors"]]
        assert "reliability-drift" in kinds and "slo-burn-rate" in kinds
        drift = data["detectors"][kinds.index("reliability-drift")]
        assert drift["alpha"] == 1e-3 and drift["target"] == 0.99


class TestRunManifest:
    def test_defaults_are_empty_not_shared(self):
        a = RunManifest(experiment=None)
        b = RunManifest(experiment=None)
        assert a.parameters == {} and a.cache_policy == {}
        assert a.parameters is not b.parameters
