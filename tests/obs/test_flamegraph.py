"""Tests of trace rendering: self-time tables and text flamegraphs."""

from __future__ import annotations

from repro.obs import ManualClock, render_flamegraph, self_time_table, span, tracing
from repro.obs.flamegraph import _format_time, aggregate_self_times


def _demo_roots():
    """A deterministic trace: root (11 ticks) over two children (3 each)."""
    with tracing(clock=ManualClock()) as tracer:
        with span("root", net="demo"):
            with span("child", index=0):
                tracer.clock.tick(2)
            with span("child", index=1):
                tracer.clock.tick(2)
            tracer.clock.tick(2)
    return tracer.roots()


class TestFormatTime:
    def test_ticks_render_bare(self):
        assert _format_time(3.0, "ticks") == "3"
        assert _format_time(2.5, "ticks") == "2.5"

    def test_seconds_pick_a_scale(self):
        assert _format_time(1.5, "s") == "1.500s"
        assert _format_time(0.0012, "s") == "1.200ms"
        assert _format_time(2.5e-7, "s") == "0.2us"


class TestSelfTimeTable:
    def test_aggregates_calls_and_self_time(self):
        aggregates = aggregate_self_times(_demo_roots())
        assert aggregates["child"].calls == 2
        assert aggregates["child"].self_time == 6.0
        # self times partition the wall time
        wall = sum(root.duration for root in _demo_roots())
        assert sum(a.self_time for a in aggregates.values()) == wall

    def test_table_sorted_by_self_time(self):
        table = self_time_table(_demo_roots(), unit="ticks")
        lines = table.splitlines()
        assert "span" in lines[0] and "self%" in lines[0]
        body = [line for line in lines if line.lstrip().startswith(("root", "child"))]
        assert body[0].lstrip().startswith("child")  # 6 ticks self > root's 4

    def test_is_deterministic_under_manual_clock(self):
        assert self_time_table(_demo_roots(), unit="ticks") == self_time_table(
            _demo_roots(), unit="ticks"
        )


class TestFlamegraph:
    def test_one_line_per_span_with_bars(self):
        text = render_flamegraph(_demo_roots(), width=10, unit="ticks")
        lines = text.splitlines()
        assert len(lines) == 3
        assert "root{net=demo}" in lines[0]
        assert "100.0%" in lines[0]
        assert lines[0].startswith("[##########]")
        assert "child{index=0}" in lines[1]
        assert lines[1].startswith("  [")  # children indent under the root

    def test_max_depth_truncates_rendering(self):
        text = render_flamegraph(_demo_roots(), unit="ticks", max_depth=0)
        assert len(text.splitlines()) == 1

    def test_is_deterministic_under_manual_clock(self):
        first = render_flamegraph(_demo_roots(), unit="ticks")
        second = render_flamegraph(_demo_roots(), unit="ticks")
        assert first == second
