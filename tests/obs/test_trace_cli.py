"""Tests of the ``repro trace`` CLI subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.registry import EXPERIMENT_IDS


def _trace_json(capsys, *argv: str) -> dict:
    assert main(["trace", *argv, "--manual-clock", "--json"]) == 0
    return json.loads(capsys.readouterr().out)


class TestTraceJson:
    def test_payload_has_manifest_trace_normalized_metrics(self, capsys):
        payload = _trace_json(capsys, "table2-defaults")
        assert set(payload) == {"manifest", "unit", "trace", "normalized", "metrics"}
        assert payload["unit"] == "ticks"
        assert payload["manifest"]["experiment"] == "table2-defaults"
        assert payload["manifest"]["clock"] == "manual"
        assert payload["manifest"]["cache_policy"]["enabled"] is False
        (root,) = payload["normalized"]
        assert root["name"] == "experiment"
        assert root["attrs"] == {"experiment": "table2-defaults"}
        assert payload["metrics"]["counters"]["statespace.states_explored"] > 0

    def test_manual_clock_trace_is_deterministic(self, capsys):
        first = _trace_json(capsys, "table2-defaults")
        second = _trace_json(capsys, "table2-defaults")
        assert first == second  # timings included — full byte determinism

    def test_parallel_trace_normalizes_like_serial(self, capsys):
        serial = _trace_json(capsys, "table2-defaults", "--jobs", "1")
        parallel = _trace_json(capsys, "table2-defaults", "--jobs", "2")
        assert parallel["normalized"] == serial["normalized"]
        assert (
            parallel["metrics"]["counters"] == serial["metrics"]["counters"]
        )

    def test_out_writes_file_instead_of_stdout(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(
            ["trace", "table2-defaults", "--manual-clock", "--json", "--out", str(out)]
        ) == 0
        assert capsys.readouterr().out == ""
        payload = json.loads(out.read_text())
        assert payload["manifest"]["experiment"] == "table2-defaults"

    @pytest.mark.slow
    @pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
    def test_every_registry_experiment_traces_deterministically(
        self, capsys, experiment_id
    ):
        """Acceptance sweep: all 16 experiments, jobs 1 vs 4, same tree."""
        serial = _trace_json(capsys, experiment_id, "--jobs", "1")
        parallel = _trace_json(capsys, experiment_id, "--jobs", "4")
        assert parallel["normalized"] == serial["normalized"]
        assert (
            parallel["metrics"]["counters"] == serial["metrics"]["counters"]
        )


class TestTraceText:
    def test_renders_summary_flamegraph_metrics(self, capsys):
        assert main(["trace", "table2-defaults", "--manual-clock"]) == 0
        out = capsys.readouterr().out
        assert "== self-time summary ==" in out
        assert "== flamegraph ==" in out
        assert "== metrics ==" in out
        assert "experiment{experiment=table2-defaults}" in out
        assert "dspn.solve" in out

    def test_depth_truncates_flamegraph(self, capsys):
        assert main(
            ["trace", "table2-defaults", "--manual-clock", "--depth", "0"]
        ) == 0
        out = capsys.readouterr().out
        flame = out.split("== flamegraph ==")[1].split("== metrics ==")[0]
        assert len([line for line in flame.splitlines() if line.strip()]) == 1


class TestTraceArguments:
    def test_list_prints_registry_ids(self, capsys):
        assert main(["trace", "--list"]) == 0
        assert capsys.readouterr().out.split() == list(EXPERIMENT_IDS)

    def test_missing_experiment_exits_with_hint(self):
        with pytest.raises(SystemExit, match="repro trace --list"):
            main(["trace"])

    def test_unknown_experiment_exits_nonzero(self, capsys):
        assert main(["trace", "no-such-experiment", "--manual-clock"]) == 2
        assert "error:" in capsys.readouterr().err
