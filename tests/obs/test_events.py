"""Tests for the structured event stream and its determinism contract."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.engine import SweepPlan, cache_override
from repro.obs import (
    ManualClock,
    current_stream,
    emit,
    event_stream,
    events_active,
    normalize_events,
    use_clock,
)
from repro.obs.events import LIFECYCLE_EVENTS, VOLATILE_FIELDS, EventStream


def _double(x):
    return 2 * x


class TestEventStream:
    def test_emit_stamps_kind_and_clock(self):
        stream = EventStream(clock=ManualClock())
        stream.emit("sweep.plan", points=3)
        stream.emit("sweep.point.start", index=0)
        assert [e["event"] for e in stream.events] == [
            "sweep.plan",
            "sweep.point.start",
        ]
        assert stream.events[0]["points"] == 3
        assert stream.events[0]["ts"] < stream.events[1]["ts"]

    def test_sink_receives_each_event_immediately(self):
        sink = io.StringIO()
        stream = EventStream(sink=sink, clock=ManualClock())
        stream.emit("sweep.plan", points=1)
        # written (and parseable) before the stream is closed: live tailing
        line = sink.getvalue().splitlines()[0]
        assert json.loads(line)["event"] == "sweep.plan"

    def test_replay_preserves_timestamps_and_stamps_extra(self):
        stream = EventStream(clock=ManualClock())
        stream.replay(
            [{"event": "sweep.point.start", "ts": 123.0, "index": 5}],
            process=2,
        )
        assert stream.events == [
            {"event": "sweep.point.start", "ts": 123.0, "index": 5, "process": 2}
        ]

    def test_to_jsonl_round_trips(self):
        stream = EventStream(clock=ManualClock())
        stream.emit("cache.miss")
        parsed = [json.loads(line) for line in stream.to_jsonl().splitlines()]
        assert parsed == stream.events


class TestContextLocalActivation:
    def test_emit_is_noop_without_stream(self):
        assert not events_active()
        emit("sweep.plan", points=1)  # must not raise

    def test_event_stream_installs_and_restores(self):
        with event_stream() as stream:
            assert events_active()
            assert current_stream() is stream
            emit("cache.hit", tier="memory")
        assert not events_active()
        assert stream.events[0]["event"] == "cache.hit"


class TestNormalization:
    def test_accepts_dicts_lines_and_blob(self):
        events = [
            {"event": "sweep.plan", "ts": 1.0, "jobs": 4, "points": 2},
            {"event": "cache.miss", "ts": 2.0},
            {"event": "sweep.point.start", "ts": 3.0, "index": 0, "process": 1},
        ]
        expected = [
            {"event": "sweep.plan", "points": 2},
            {"event": "sweep.point.start", "index": 0},
        ]
        blob = "\n".join(json.dumps(e) for e in events)
        assert normalize_events(events) == expected
        assert normalize_events(blob.splitlines()) == expected
        assert normalize_events(blob) == expected

    def test_contract_constants(self):
        assert "sweep.worker.merge" not in LIFECYCLE_EVENTS
        assert "ts" in VOLATILE_FIELDS and "process" in VOLATILE_FIELDS


class TestSweepDeterminism:
    def _events_for(self, jobs):
        plan = SweepPlan.over(_double, range(8), label="grid")
        with cache_override(enabled=False), use_clock(ManualClock()):
            with event_stream() as stream:
                results = plan.run(jobs=jobs, chunk_size=2)
        assert results == [2 * x for x in range(8)]
        return stream.events

    def test_serial_lifecycle_order(self):
        events = self._events_for(1)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "sweep.plan"
        assert kinds.count("sweep.point.start") == 8
        assert kinds.count("sweep.point.done") == 8

    def test_jobs4_normalizes_identically_to_jobs1(self):
        assert normalize_events(self._events_for(4)) == normalize_events(
            self._events_for(1)
        )

    def test_parallel_stream_has_worker_merges_with_lanes(self):
        events = self._events_for(4)
        merges = [e for e in events if e["event"] == "sweep.worker.merge"]
        assert [m["process"] for m in merges] == [1, 2, 3, 4]
        assert sum(m["points"] for m in merges) == 8
        replayed = [e for e in events if e["event"] == "sweep.point.start"]
        assert all(e["process"] >= 1 for e in replayed)

    def test_manual_clock_stream_is_byte_reproducible(self):
        first = json.dumps(self._events_for(4), sort_keys=True)
        second = json.dumps(self._events_for(4), sort_keys=True)
        assert first == second


class TestEventsCli:
    @pytest.mark.parametrize("jobs", ["1", "2"])
    def test_sweep_writes_live_jsonl(self, tmp_path, capsys, jobs):
        out = tmp_path / "events.jsonl"
        code = main(
            [
                "sweep",
                "--six",
                "--parameter",
                "p_prime",
                "--values",
                "0.2,0.5,0.8",
                "--jobs",
                jobs,
                "--no-cache",
                "--events",
                str(out),
            ]
        )
        assert code == 0
        events = [json.loads(line) for line in out.read_text().splitlines()]
        kinds = [e["event"] for e in events]
        assert "sweep.plan" in kinds
        assert kinds.count("sweep.point.done") == 3

    def test_cli_jobs_values_normalize_identically(self, tmp_path, capsys):
        streams = {}
        for jobs in ("1", "3"):
            out = tmp_path / f"events-{jobs}.jsonl"
            assert (
                main(
                    [
                        "sweep",
                        "--six",
                        "--parameter",
                        "p_prime",
                        "--values",
                        "0.2,0.5,0.8",
                        "--jobs",
                        jobs,
                        "--no-cache",
                        "--events",
                        str(out),
                    ]
                )
                == 0
            )
            streams[jobs] = normalize_events(out.read_text())
        assert streams["1"] == streams["3"]
