"""Tests for the benchmark trajectory runner and regression gate."""

from __future__ import annotations

import json
import time

import pytest

from repro.cli import main
from repro.errors import ParameterError
from repro.obs.regress import (
    BENCH_SUITE,
    BenchResult,
    append_history,
    calibration_run,
    find_regressions,
    latest_baselines,
    load_history,
    parse_slowdowns,
    run_benchmarks,
)

#: A fast fake suite so runner tests take milliseconds, not seconds.
FAKE_SUITE = {
    "noop": lambda: None,
    "spin": lambda: sum(range(2000)),
}


class TestRunner:
    def test_results_are_stamped_and_normalized(self):
        results = run_benchmarks(["noop"], rounds=1, suite=FAKE_SUITE)
        (result,) = results
        assert result.bench == "noop"
        assert result.seconds >= 0.0
        assert result.calibration_s > 0.0
        assert result.score == result.seconds / result.calibration_s
        assert result.manifest.numpy_version  # provenance attached
        json.dumps(result.as_dict())  # history-line ready

    def test_default_ids_run_whole_suite_in_order(self):
        results = run_benchmarks(rounds=1, suite=FAKE_SUITE)
        assert [r.bench for r in results] == list(FAKE_SUITE)

    def test_unknown_id_lists_valid_ones(self):
        with pytest.raises(ParameterError, match="noop, spin"):
            run_benchmarks(["nope"], suite=FAKE_SUITE)

    def test_slowdown_multiplies_recorded_time(self):
        slow = {"spin": lambda: time.sleep(0.005)}
        plain = run_benchmarks(["spin"], rounds=1, suite=slow)[0]
        slowed = run_benchmarks(
            ["spin"], rounds=1, suite=slow, slowdowns={"spin": 100.0}
        )[0]
        assert slowed.seconds > 10 * plain.seconds

    def test_slowdown_for_unselected_id_rejected(self):
        with pytest.raises(ParameterError, match="unknown benchmark"):
            run_benchmarks(
                ["noop"], suite=FAKE_SUITE, slowdowns={"spin": 2.0}
            )

    def test_rounds_must_be_positive(self):
        with pytest.raises(ParameterError, match="rounds"):
            run_benchmarks(["noop"], rounds=0, suite=FAKE_SUITE)

    def test_real_suite_ids_are_importable_callables(self):
        for bench, workload in BENCH_SUITE.items():
            assert callable(workload), bench

    def test_calibration_is_positive_and_repeatable(self):
        assert calibration_run() > 0.0


class TestSlowdownParsing:
    def test_parses_pairs(self):
        assert parse_slowdowns(["a=2.0", "b=1.5"]) == {"a": 2.0, "b": 1.5}

    def test_none_is_empty(self):
        assert parse_slowdowns(None) == {}

    @pytest.mark.parametrize("spec", ["a", "=2.0", "a=", "a=zero", "a=-1"])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ParameterError, match="invalid slowdown"):
            parse_slowdowns([spec])


class TestHistory:
    def test_append_then_load_round_trips(self, tmp_path):
        path = tmp_path / "history.jsonl"
        results = run_benchmarks(rounds=1, suite=FAKE_SUITE)
        append_history(path, results)
        append_history(path, results[:1])
        entries = load_history(path)
        assert [e["bench"] for e in entries] == ["noop", "spin", "noop"]

    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_corrupt_line_is_reported_with_position(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text('{"bench": "a", "score": 1.0}\nnot json\n')
        with pytest.raises(ParameterError, match="history.jsonl:2"):
            load_history(path)

    def test_latest_baseline_wins(self):
        history = [
            {"bench": "a", "score": 1.0},
            {"bench": "b", "score": 2.0},
            {"bench": "a", "score": 3.0},
        ]
        assert latest_baselines(history) == {
            "a": {"bench": "a", "score": 3.0},
            "b": {"bench": "b", "score": 2.0},
        }


def _result(bench: str, score: float) -> BenchResult:
    from repro.obs.manifest import collect_manifest

    return BenchResult(
        bench=bench,
        seconds=score,
        score=score,
        calibration_s=1.0,
        rounds=1,
        manifest=collect_manifest(experiment="bench"),
    )


class TestGate:
    def test_within_tolerance_passes(self):
        regressions = find_regressions(
            [_result("a", 1.4)], {"a": {"score": 1.0}}, tolerance=0.5
        )
        assert regressions == []

    def test_beyond_tolerance_fails_with_ratio(self):
        (regression,) = find_regressions(
            [_result("a", 2.0)], {"a": {"score": 1.0}}, tolerance=0.5
        )
        assert regression.ratio == pytest.approx(2.0)
        assert "2.00x" in regression.describe()

    def test_no_baseline_passes_trivially(self):
        assert find_regressions([_result("new", 9.0)], {}) == []

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ParameterError, match="tolerance"):
            find_regressions([], {}, tolerance=-0.1)


class TestBenchCli:
    def test_list_prints_suite(self, capsys):
        assert main(["bench", "--list"]) == 0
        assert capsys.readouterr().out.splitlines() == list(BENCH_SUITE)

    def test_record_then_gate_then_injected_regression(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.obs.regress as regress

        monkeypatch.setattr(regress, "BENCH_SUITE", FAKE_SUITE)
        history = tmp_path / "history.jsonl"
        argv = ["bench", "spin", "--rounds", "1", "--history", str(history)]

        # first run records the baseline
        assert main(argv) == 0
        assert len(load_history(history)) == 1

        # unchanged performance passes the gate and records again
        assert main([*argv, "--gate", "--tolerance", "4.0"]) == 0
        assert "gate ok" in capsys.readouterr().out
        assert len(load_history(history)) == 2

        # an injected 100x slowdown trips the gate and is NOT recorded
        code = main(
            [*argv, "--gate", "--tolerance", "4.0", "--slowdown", "spin=100"]
        )
        assert code == 1
        assert "REGRESSION spin" in capsys.readouterr().err
        assert len(load_history(history)) == 2

    def test_no_record_leaves_history_untouched(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.obs.regress as regress

        monkeypatch.setattr(regress, "BENCH_SUITE", FAKE_SUITE)
        history = tmp_path / "history.jsonl"
        assert (
            main(
                [
                    "bench",
                    "noop",
                    "--rounds",
                    "1",
                    "--history",
                    str(history),
                    "--no-record",
                ]
            )
            == 0
        )
        assert not history.exists()

    def test_readme_benchmark_table_is_fresh(self):
        """Doc-freshness: the README table matches BENCH_HISTORY.jsonl."""
        import importlib.util
        from pathlib import Path

        script = (
            Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "render_history.py"
        )
        spec = importlib.util.spec_from_file_location("render_history", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.main(["--check"]) == 0

    def test_monitoring_doc_covers_batch_workload(self):
        """Doc-freshness: MONITORING.md documents the batch runtime.

        The batch-simulation section must keep naming the benchmark id
        the gate enforces and the CLI flag that reaches the runtime —
        renaming either without updating the docs fails here.
        """
        from pathlib import Path

        doc = (
            Path(__file__).resolve().parents[2] / "docs" / "MONITORING.md"
        ).read_text()
        assert "## Batch simulation" in doc
        assert "sim-batch-1m" in doc
        assert "--batch" in doc
        assert "test_batch_differential.py" in doc
        assert "test_batch_oracle.py" in doc

    def test_serving_doc_covers_operating_surfaces(self):
        """Doc-freshness: SERVING.md documents the operator surfaces.

        The operating section must keep naming the endpoints, the
        console command, and the fixture its snapshot test pins —
        renaming any of them without updating the docs fails here.
        """
        from pathlib import Path

        doc = (
            Path(__file__).resolve().parents[2] / "docs" / "SERVING.md"
        ).read_text()
        assert "## Operating the service" in doc
        assert "/trace/{id}" in doc
        assert "/monitor" in doc
        assert "repro top" in doc
        assert "tests/obs/fixtures/top_events.jsonl" in doc
        # the screenshot-style frame stays in sync with the golden file
        golden = (
            Path(__file__).resolve().parent / "fixtures" / "top_frame.txt"
        ).read_text()
        assert golden.rstrip("\n") in doc

    def test_docs_cover_alerting(self):
        """Doc-freshness: the alerting subsystem is documented end to end.

        OBSERVABILITY.md owns the detector math and replay contract;
        SERVING.md documents the `/alerts` surface and cross-links it;
        MONITORING.md points monitored batch runs at `--watch`.
        Renaming the benchmark, the test file, or the endpoint without
        updating the docs fails here.
        """
        from pathlib import Path

        docs = Path(__file__).resolve().parents[2] / "docs"
        obs = (docs / "OBSERVABILITY.md").read_text()
        assert "## Alerting" in obs
        assert "repro watch" in obs
        assert "watch-firehose-1m" in obs
        assert "bench_watch_overhead.py" in obs
        assert "test_batch_watch.py" in obs
        assert "Ville" in obs and "Hoeffding" in obs
        serving = (docs / "SERVING.md").read_text()
        assert "/alerts" in serving
        assert "OBSERVABILITY.md#alerting" in serving
        assert "serve.alerts.{pending,firing,resolved}" in serving
        monitoring = (docs / "MONITORING.md").read_text()
        assert "OBSERVABILITY.md#alerting" in monitoring
        assert "--watch" in monitoring

    def test_committed_history_gates_clean(self, capsys):
        """The repository's own baseline accepts a current fake run.

        This is the committed-baseline acceptance criterion scaled to
        test time: the real CI job runs the real suite against
        BENCH_HISTORY.jsonl; here we verify the file parses and gates.
        """
        from pathlib import Path

        history = Path(__file__).resolve().parents[2] / "BENCH_HISTORY.jsonl"
        entries = load_history(history)
        assert entries, "BENCH_HISTORY.jsonl must ship a baseline"
        baselines = latest_baselines(entries)
        assert set(baselines) == set(BENCH_SUITE)
        for entry in entries:
            assert entry["score"] > 0
            assert "manifest" in entry


class TestSimBatchWorkload:
    """The sim-batch-1m workload meets its advertised request rate."""

    def test_simulates_a_million_requests_over_1e6_per_second(self):
        from repro.obs.metrics import registry_override
        from repro.obs.regress import sim_batch_config
        from repro.simulation import simulate_batch

        config = sim_batch_config()
        assert config.groups * config.rounds >= 1_000_000
        with registry_override():
            report = simulate_batch(config)
        assert report.requests == config.groups * config.rounds
        assert report.throughput >= 1.0e6, (
            f"sim-batch-1m ran at {report.throughput:,.0f} requests/s, "
            "below the 1e6 acceptance bar"
        )

    def test_suite_entry_runs_the_same_config(self):
        """The benchmark id is wired to the workload the test measures."""
        from repro.obs.regress import _bench_sim_batch

        assert BENCH_SUITE["sim-batch-1m"] is _bench_sim_batch


class TestWatchFirehoseWorkload:
    """The watch-firehose-1m workload and its overhead budget."""

    def test_suite_entry_is_the_watch_workload(self):
        from repro.obs.regress import _bench_watch_firehose

        assert BENCH_SUITE["watch-firehose-1m"] is _bench_watch_firehose

    def test_watch_fold_is_a_rounding_error_next_to_the_simulation(self):
        """The detector fold over the 1M-request report must cost well
        under the 5 % overhead budget the benchmark enforces — it is
        O(rounds/block) windows of plain-float arithmetic against the
        runtime's O(groups x rounds) vectorized work."""
        import dataclasses

        from repro.obs import now
        from repro.obs.metrics import registry_override
        from repro.obs.regress import sim_batch_config
        from repro.obs.watch import batch_watch_config, watch_batch_report
        from repro.perception.evaluation import evaluate
        from repro.simulation import simulate_batch

        config = dataclasses.replace(
            sim_batch_config(), record_round_totals=True
        )
        target = evaluate(config.parameters).expected_reliability
        with registry_override():
            start = now()
            report = simulate_batch(config)
            simulate_s = now() - start
        watch_config = batch_watch_config(config, target=target)
        start = now()
        watcher = watch_batch_report(config, report, watch_config)
        fold_s = now() - start
        assert watcher.windows_seen == config.rounds // watch_config.block
        assert watcher.log.events == [], "clean firehose must stay quiet"
        assert fold_s < 0.05 * simulate_s, (
            f"watch fold took {fold_s * 1000:.1f} ms against a "
            f"{simulate_s * 1000:.1f} ms simulation"
        )

    def test_overhead_benchmark_enforces_the_five_percent_budget(self):
        import importlib.util
        from pathlib import Path

        script = (
            Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "bench_watch_overhead.py"
        )
        spec = importlib.util.spec_from_file_location(
            "bench_watch_overhead", script
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.BUDGET_PCT == 5.0
