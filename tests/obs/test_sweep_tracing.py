"""Cross-process span reassembly: ``--jobs N`` traces like ``--jobs 1``.

The tentpole invariant of the observability layer: a parallel sweep's
grafted trace normalizes to exactly the serial sweep's trace, and its
merged counters equal the serial totals.  Workers capture spans under
fresh per-point tracers, ship the records back with the results, and the
parent reassembles them in point order.
"""

from __future__ import annotations

import json

from repro.engine import SweepPlan, cache_override
from repro.experiments.registry import run_experiment
from repro.obs import ManualClock, counter, registry_override, span, tracing, use_clock


def _traced_point(value: float) -> float:
    """Module-level (hence picklable) point function that emits spans."""
    with span("work", value=value):
        with span("work.inner"):
            counter("test.points").inc()
    return value * 2.0


def _normalized(tracer) -> str:
    return json.dumps(
        [root.normalized() for root in tracer.roots()], sort_keys=True
    )


def _run_sweep(jobs: int) -> tuple[str, dict]:
    plan = SweepPlan.over(_traced_point, [float(v) for v in range(7)], label="demo")
    with registry_override() as registry:
        with use_clock(ManualClock()):
            with tracing(clock=ManualClock()) as tracer:
                results = plan.run(jobs=jobs)
    assert results == [v * 2.0 for v in range(7)]
    return _normalized(tracer), registry.snapshot()


class TestSweepReassembly:
    def test_parallel_tree_normalizes_to_serial(self):
        serial_tree, serial_metrics = _run_sweep(jobs=1)
        parallel_tree, parallel_metrics = _run_sweep(jobs=4)
        assert parallel_tree == serial_tree  # byte-identical
        assert parallel_metrics["counters"] == serial_metrics["counters"]

    def test_tree_shape_has_points_under_sweep(self):
        plan = SweepPlan.over(_traced_point, [1.0, 2.0], label="shape")
        with registry_override():
            with tracing(clock=ManualClock()) as tracer:
                plan.run(jobs=2)
        (root,) = tracer.roots()
        assert root.name == "engine.sweep"
        assert root.attrs == {"label": "shape", "points": 2}
        assert [child.name for child in root.children] == [
            "engine.sweep.point",
            "engine.sweep.point",
        ]
        assert [child.attrs["index"] for child in root.children] == [0, 1]
        assert [g.name for g in root.children[0].children] == ["work"]

    def test_jobs_is_a_measure_not_an_attr(self):
        """jobs differs between modes, so it must not affect normalization."""
        plan = SweepPlan.over(_traced_point, [1.0, 2.0])
        with registry_override():
            with tracing(clock=ManualClock()) as tracer:
                plan.run(jobs=2)
        (root,) = tracer.roots()
        assert "jobs" not in root.attrs
        assert root.measures["jobs"] == 2

    def test_untraced_parallel_sweep_still_merges_metrics(self):
        plan = SweepPlan.over(_traced_point, [1.0, 2.0, 3.0])
        with registry_override() as registry:
            results = plan.run(jobs=2)
        assert results == [2.0, 4.0, 6.0]
        assert registry.counter("test.points").value == 3.0


class TestExperimentReassembly:
    def test_table2_defaults_traces_identically_serial_and_parallel(self):
        """End-to-end: a real experiment, cache off, jobs 1 vs 4."""

        def run(jobs: int):
            with registry_override() as registry:
                with cache_override(enabled=False):
                    with use_clock(ManualClock()):
                        with tracing(clock=ManualClock()) as tracer:
                            report = run_experiment("table2-defaults", jobs=jobs)
            return _normalized(tracer), registry.snapshot(), report.render(plot=False)

        serial_tree, serial_metrics, serial_render = run(1)
        parallel_tree, parallel_metrics, parallel_render = run(4)
        assert parallel_tree == serial_tree
        assert parallel_metrics["counters"] == serial_metrics["counters"]
        assert parallel_render == serial_render
        assert '"dspn.solve"' in serial_tree  # solver spans made it across
