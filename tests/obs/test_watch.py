"""Unit tests for repro.obs.watch: detectors, lifecycle fold, replay.

The load-bearing properties:

* the drift e-process stays quiet on a clean stream (Ville guarantee)
  and beats its certified sample bound under real degradation;
* the burn-rate rule pages only when fast AND slow windows are hot;
* the consistency check honours its ratio slack and Hoeffding margin;
* the alert lifecycle is a pure fold — dedup keys, episode counters,
  absolute cursors — and a recorded stream replays byte-identically.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ParameterError
from repro.obs.watch import (
    FIRING,
    OK,
    PENDING,
    AlertLog,
    BurnRateDetector,
    MonitorConsistencyDetector,
    ReliabilityDriftDetector,
    WatchConfig,
    Watcher,
    replay_events,
)


# ----------------------------------------------------------------------
# reliability drift (mixture e-value)
# ----------------------------------------------------------------------
class TestReliabilityDrift:
    def test_clean_stream_never_fires(self):
        """Zero failures against a 99.9 %-success target: log E_n falls,
        never approaches the bar — the Ville guarantee in miniature."""
        detector = ReliabilityDriftDetector(0.999, alpha=1e-3)
        for _ in range(1000):
            assert detector.update(0, 100) == OK
        assert detector.log_e_value < 0.0

    def test_on_target_failures_stay_ok(self):
        """Failures exactly at the target rate keep the e-value near 1."""
        detector = ReliabilityDriftDetector(0.99, alpha=1e-3)
        for _ in range(200):
            detector.update(1, 100)  # 1% failures == 1 - target
        assert detector.level() == OK

    def test_degradation_fires_within_the_certified_bound(self):
        detector = ReliabilityDriftDetector(0.999, alpha=1e-3)
        bound = detector.sample_bound(0.99)  # 10x the target failure rate
        window = 100
        for _ in range(math.ceil(bound / window)):
            if detector.update(1, window) == FIRING:
                break
        assert detector.level() == FIRING
        assert detector.fired_at_trials is not None
        assert detector.fired_at_trials <= bound

    def test_pending_zone_precedes_firing(self):
        detector = ReliabilityDriftDetector(0.999, alpha=1e-3)
        levels = []
        while detector.level() != FIRING:
            levels.append(detector.update(1, 100))
        assert PENDING in levels, "must pass through the warning zone"
        assert levels.index(PENDING) < levels.index(FIRING)

    def test_alternatives_capped_below_certainty(self):
        """Huge factors must not produce q1 >= 1 (unbounded LLR)."""
        detector = ReliabilityDriftDetector(0.5, factors=(2.0, 100.0))
        assert all(q < 1.0 for q in detector.alternatives)

    def test_sample_bound_rejects_non_degradation(self):
        detector = ReliabilityDriftDetector(0.99)
        with pytest.raises(ParameterError, match="not detectable"):
            detector.sample_bound(0.999)  # better than target

    def test_certificate_is_plain_json_data(self):
        certificate = ReliabilityDriftDetector(0.99, alpha=1e-4).certificate()
        assert json.loads(json.dumps(certificate)) == certificate
        assert certificate["kind"] == "reliability-drift"
        assert certificate["alpha"] == 1e-4
        assert certificate["threshold_log_e"] == pytest.approx(-math.log(1e-4))
        assert "Ville" in certificate["guarantee"]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target": 0.0},
            {"target": 1.0},
            {"target": 0.9, "alpha": 0.0},
            {"target": 0.9, "factors": ()},
            {"target": 0.9, "factors": (0.5,)},
        ],
    )
    def test_invalid_configuration_rejected(self, kwargs):
        target = kwargs.pop("target")
        with pytest.raises(ParameterError):
            ReliabilityDriftDetector(target, **kwargs)

    def test_invalid_window_rejected(self):
        detector = ReliabilityDriftDetector(0.99)
        with pytest.raises(ParameterError, match="invalid drift window"):
            detector.update(5, 3)


# ----------------------------------------------------------------------
# SLO burn rate
# ----------------------------------------------------------------------
class TestBurnRate:
    def _hot(self, detector: BurnRateDetector, n: int, start: float = 0.0):
        level = OK
        for index in range(n):
            level = detector.observe(start + index, bad=True)
        return level

    def test_fast_and_slow_hot_fires(self):
        detector = BurnRateDetector(objective=0.99)
        assert self._hot(detector, 20) == FIRING

    def test_fast_only_is_pending(self):
        """Errors old enough to leave the fast window but not the slow
        one dilute the slow burn below its factor: no page."""
        detector = BurnRateDetector(
            objective=0.99, fast_window=30.0, slow_window=1000.0
        )
        for index in range(400):  # all-good history fills the slow window
            detector.observe(float(index), bad=False)
        level = OK
        for index in range(20):  # a fresh hot burst
            level = detector.observe(400.0 + index, bad=True)
        assert level == PENDING
        assert detector.burn(detector.fast) >= detector.fast_burn
        assert detector.burn(detector.slow) < detector.slow_burn

    def test_min_count_suppresses_early_noise(self):
        detector = BurnRateDetector(objective=0.99, min_count=12)
        for index in range(11):
            assert detector.observe(float(index), bad=True) == OK

    def test_windows_slide_on_observation_time_only(self):
        detector = BurnRateDetector(
            objective=0.99, fast_window=20.0, slow_window=40.0
        )
        self._hot(detector, 15)
        assert detector.level() == FIRING
        # a long quiet stretch in *stream* time evicts the errors
        for index in range(30):
            detector.observe(100.0 + index, bad=False)
        assert detector.level() == OK

    def test_observe_counts_aggregates(self):
        a = BurnRateDetector(objective=0.99)
        b = BurnRateDetector(objective=0.99)
        for index in range(12):
            a.observe(float(index), bad=True)
        b.observe_counts(11.0, bad=12, total=12)
        assert a.level() == b.level() == FIRING

    def test_certificate_records_the_rule_constants(self):
        certificate = BurnRateDetector(objective=0.999).certificate()
        assert json.loads(json.dumps(certificate)) == certificate
        assert certificate["budget"] == pytest.approx(0.001)
        assert certificate["fast_burn"] == 14.4
        assert certificate["slow_burn"] == 6.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"objective": 1.0},
            {"fast_window": 0.0},
            {"fast_window": 100.0, "slow_window": 10.0},
            {"fast_burn": 0.0},
            {"min_count": 0},
        ],
    )
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ParameterError):
            BurnRateDetector(**kwargs)


# ----------------------------------------------------------------------
# monitor consistency
# ----------------------------------------------------------------------
class TestMonitorConsistency:
    def _detector(self, **kwargs):
        kwargs.setdefault("p_deviate_healthy", 0.01)
        kwargs.setdefault("p_deviate_compromised", 0.3)
        return MonitorConsistencyDetector(**kwargs)

    def test_model_consistent_votes_stay_ok(self):
        detector = self._detector()
        # nothing flagged, deviations at the healthy model rate
        assert detector.update(
            deviations=10, participants=1000, flagged=0
        ) == OK

    def test_underflagged_disagreement_fires(self):
        """Votes deviating at 15x the healthy rate while the monitor
        flags nobody: exactly the inconsistency this detector exists
        to catch."""
        detector = self._detector()
        assert detector.update(
            deviations=150, participants=1000, flagged=0
        ) == FIRING

    def test_flagged_modules_raise_the_allowance(self):
        """The same deviation load is consistent once the monitor has
        flagged enough modules to explain it."""
        detector = self._detector()
        assert detector.update(
            deviations=100, participants=1000, flagged=500
        ) == OK

    def test_small_windows_abstain(self):
        detector = self._detector(min_participants=256)
        assert detector.update(
            deviations=100, participants=100, flagged=0
        ) == OK

    def test_hoeffding_margin_scales_with_alpha(self):
        strict = self._detector(alpha=1e-2)
        lax = self._detector(alpha=1e-12)
        for detector in (strict, lax):
            detector.update(deviations=50, participants=1000, flagged=0)
        assert lax.last_bound > strict.last_bound
        expected = 2.0 * 0.01 + math.sqrt(math.log(1e2) / 2000.0)
        assert strict.last_bound == pytest.approx(expected)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"p_deviate_healthy": 0.5, "p_deviate_compromised": 0.1},
            {"p_deviate_healthy": -0.1, "p_deviate_compromised": 0.3},
            {"p_deviate_healthy": 0.01, "p_deviate_compromised": 0.3,
             "ratio": 0.5},
            {"p_deviate_healthy": 0.01, "p_deviate_compromised": 0.3,
             "alpha": 0.0},
        ],
    )
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ParameterError):
            MonitorConsistencyDetector(**kwargs)


# ----------------------------------------------------------------------
# alert lifecycle fold
# ----------------------------------------------------------------------
class TestAlertLog:
    def _observe(self, log, level, time, key="k"):
        return log.observe(
            key=key,
            detector="d",
            severity="page",
            level=level,
            time=time,
            value=1.0,
            threshold=2.0,
        )

    def test_full_lifecycle_emits_three_events(self):
        log = AlertLog()
        assert [e["event"] for e in self._observe(log, PENDING, 1.0)] == [
            "alert.pending"
        ]
        assert [e["event"] for e in self._observe(log, FIRING, 2.0)] == [
            "alert.firing"
        ]
        assert [e["event"] for e in self._observe(log, OK, 3.0)] == [
            "alert.resolved"
        ]
        assert log.counts() == {
            "fired": 1, "resolved": 1, "active": 0, "pending": 0
        }

    def test_steady_state_is_silent(self):
        log = AlertLog()
        self._observe(log, FIRING, 1.0)
        assert self._observe(log, FIRING, 2.0) == []
        assert len(log.events) == 1

    def test_pending_that_cools_off_never_pages(self):
        log = AlertLog()
        self._observe(log, PENDING, 1.0)
        assert self._observe(log, OK, 2.0) == []
        assert [e["event"] for e in log.events] == ["alert.pending"]
        assert log.counts()["fired"] == 0

    def test_reentry_bumps_the_episode(self):
        log = AlertLog()
        self._observe(log, FIRING, 1.0)
        self._observe(log, OK, 2.0)
        (event,) = self._observe(log, FIRING, 3.0)
        assert event["episode"] == 2
        assert log.alerts["k"].fired_total == 2

    def test_keys_dedup_independent_state_machines(self):
        log = AlertLog()
        self._observe(log, FIRING, 1.0, key="a")
        self._observe(log, FIRING, 2.0, key="b")
        self._observe(log, OK, 3.0, key="a")
        assert [a.key for a in log.active()] == ["b"]
        assert log.counts() == {
            "fired": 2, "resolved": 1, "active": 1, "pending": 0
        }

    def test_seq_cursors_are_absolute_and_resumable(self):
        log = AlertLog()
        for time in range(1, 4):
            self._observe(log, FIRING, float(time), key=f"k{time}")
        assert [e["seq"] for e in log.events] == [1, 2, 3]
        assert [e["seq"] for e in log.events_since(1)] == [2, 3]
        assert log.events_since(99) == []
        assert log.events_since(0) == log.events

    def test_events_are_deterministic_json(self):
        log = AlertLog()
        self._observe(log, FIRING, 1.0)
        event = log.events[0]
        assert json.loads(json.dumps(event)) == event
        assert "ts" not in event, "alert events carry stream time only"


# ----------------------------------------------------------------------
# Watcher + replay
# ----------------------------------------------------------------------
class TestWatcher:
    def test_config_round_trips_through_plan_dict(self):
        config = WatchConfig(target=0.99, alpha=1e-4, drift_factors=(3.0, 9.0))
        assert WatchConfig.from_dict(config.as_dict()) == config

    def test_from_dict_ignores_unknown_fields(self):
        assert WatchConfig.from_dict({"target": 0.9, "frobnicate": 1}) == (
            WatchConfig(target=0.9)
        )

    def test_plan_carries_certificates_for_armed_detectors(self):
        watcher = Watcher(
            WatchConfig(
                target=0.99,
                p_deviate_healthy=0.01,
                p_deviate_compromised=0.3,
            )
        )
        plan = watcher.plan()
        assert plan["event"] == "watch.plan"
        kinds = [c["kind"] for c in plan["certificates"]]
        assert kinds == [
            "reliability-drift", "monitor-consistency", "slo-burn-rate"
        ]
        assert json.loads(json.dumps(plan)) == plan

    def test_feed_event_skips_alert_and_watch_kinds(self):
        watcher = Watcher(WatchConfig())
        assert watcher.feed_event({"event": "alert.firing", "seq": 1}) == []
        assert watcher.feed_event({"event": "watch.plan"}) == []
        assert watcher.events_seen == 0

    def test_solve_done_feeds_the_op_burn_detector(self):
        watcher = Watcher(WatchConfig(slo_latency=0.1))
        events = []
        for index in range(20):
            events.extend(
                watcher.feed_event(
                    {"event": "serve.solve.done", "ts": float(index),
                     "seconds": 5.0, "op": "solve"}
                )
            )
        assert any(e["event"] == "alert.firing" for e in events)
        assert {e["key"] for e in events} == {"slo:solve"}

    def test_replay_reproduces_the_alert_stream_byte_for_byte(self):
        watcher = Watcher(WatchConfig(target=0.999, slo_latency=0.1))
        stream = [watcher.plan()]
        for index in range(40):
            window = {
                "event": "sim.batch.window",
                "time": float(index + 1),
                "errors": 2,
                "trials": 100,
            }
            stream.append(window)
            watcher.feed_event(window)
        assert watcher.log.counts()["fired"] >= 1
        replayed = replay_events(iter(stream))
        assert list(replayed.alert_lines()) == list(watcher.alert_lines())

    def test_replay_target_override_rearms_the_drift_detector(self):
        quiet = Watcher(WatchConfig())  # no drift detector armed
        stream = [quiet.plan()] + [
            {"event": "sim.batch.window", "time": float(i + 1),
             "errors": 5, "trials": 100}
            for i in range(40)
        ]
        assert replay_events(iter(stream)).log.counts()["fired"] == 0
        armed = replay_events(iter(stream), target=0.999)
        assert armed.log.counts()["fired"] >= 1

    def test_replay_without_any_plan_raises(self):
        with pytest.raises(ParameterError, match="no watch configuration"):
            replay_events(iter([{"event": "sim.batch.window"}]))

    @pytest.mark.parametrize(
        "kwargs", [{"block": 0}, {"slo_latency": 0.0}]
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ParameterError):
            WatchConfig(**kwargs)
