"""Tests of the metrics registry and its worker-snapshot merging."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    active_registry,
    counter,
    gauge,
    histogram,
    registry_override,
)


class TestCounter:
    def test_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4.0)
        assert registry.counter("c").value == 5.0

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError, match="increase"):
            MetricsRegistry().counter("c").inc(-1.0)


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(3)
        registry.gauge("g").set(7)
        assert registry.gauge("g").value == 7.0


class TestHistogram:
    def test_summary_tracks_count_total_min_max_mean(self):
        registry = MetricsRegistry()
        for value in (2.0, 8.0, 5.0):
            registry.histogram("h").observe(value)
        assert registry.histogram("h").summary() == {
            "count": 3,
            "total": 15.0,
            "min": 2.0,
            "max": 8.0,
            "mean": 5.0,
            "buckets": {"1": 1, "3": 2},  # (1,2] holds 2.0; (4,8] holds 5,8
        }

    def test_empty_summary_is_all_zero(self):
        assert MetricsRegistry().histogram("h").summary() == {
            "count": 0,
            "total": 0.0,
            "min": 0.0,
            "max": 0.0,
            "mean": 0.0,
            "buckets": {},
        }

    def test_quantile_extremes_are_exact(self):
        h = MetricsRegistry().histogram("h")
        for value in (0.003, 1.7, 42.0, 900.0):
            h.observe(value)
        assert h.quantile(0.0) == 0.003
        assert h.quantile(1.0) == 900.0

    def test_quantile_bounds_within_a_factor_of_two(self):
        h = MetricsRegistry().histogram("h")
        values = sorted(float(v) for v in range(1, 101))
        for value in values:
            h.observe(value)
        for q in (0.1, 0.5, 0.9, 0.99):
            exact = values[int(q * 100) - 1]
            bound = h.quantile(q)
            assert exact <= bound <= 2 * exact

    def test_quantile_empty_and_domain(self):
        h = MetricsRegistry().histogram("h")
        assert h.quantile(0.5) == 0.0
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            h.quantile(1.5)

    def test_nonpositive_values_land_in_underflow_bucket(self):
        h = MetricsRegistry().histogram("h")
        h.observe(-3.0)
        h.observe(0.0)
        h.observe(4.0)
        assert h.quantile(0.0) == -3.0  # clamped into the exact envelope
        assert h.quantile(1.0) == 4.0

    def test_quantiles_survive_merge(self):
        """Serial and merged-parallel histograms answer identically."""
        serial = MetricsRegistry()
        parent = MetricsRegistry()
        chunks = ((0.5, 3.0, 12.0), (0.25, 80.0), (7.0,))
        for chunk in chunks:
            worker = MetricsRegistry()
            for value in chunk:
                serial.histogram("h").observe(value)
                worker.histogram("h").observe(value)
            parent.merge(worker.snapshot())
        for q in (0.0, 0.25, 0.5, 0.75, 0.9, 1.0):
            assert parent.histogram("h").quantile(q) == serial.histogram(
                "h"
            ).quantile(q)


class TestRegistry:
    def test_snapshot_is_sorted_plain_data(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(4.0)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "z"]
        assert snapshot["counters"] == {"a": 2.0, "z": 1.0}
        assert snapshot["gauges"] == {"g": 1.5}
        assert snapshot["histograms"]["h"]["count"] == 1
        assert json.dumps(snapshot)  # JSON-able throughout

    def test_merge_adds_counters_overwrites_gauges_combines_histograms(self):
        parent = MetricsRegistry()
        parent.counter("c").inc(10)
        parent.gauge("g").set(1)
        parent.histogram("h").observe(2.0)

        worker = MetricsRegistry()
        worker.counter("c").inc(5)
        worker.counter("new").inc()
        worker.gauge("g").set(9)
        worker.histogram("h").observe(6.0)

        parent.merge(worker.snapshot())
        assert parent.counter("c").value == 15.0
        assert parent.counter("new").value == 1.0
        assert parent.gauge("g").value == 9.0
        assert parent.histogram("h").summary() == {
            "count": 2,
            "total": 8.0,
            "min": 2.0,
            "max": 6.0,
            "mean": 4.0,
            "buckets": {"1": 1, "3": 1},
        }

    def test_merge_skips_empty_histograms(self):
        parent = MetricsRegistry()
        parent.merge(
            {"histograms": {"h": {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0}}}
        )
        assert parent.histogram("h").count == 0
        assert parent.histogram("h").min > 1e300  # still the +inf sentinel

    def test_merge_then_snapshot_equals_serial(self):
        """The parallel invariant: merged worker snapshots == one registry."""
        serial = MetricsRegistry()
        for value in (1.0, 2.0, 3.0, 4.0):
            serial.counter("c").inc(value)
            serial.histogram("h").observe(value)

        parent = MetricsRegistry()
        for chunk in ((1.0, 2.0), (3.0, 4.0)):
            worker = MetricsRegistry()
            for value in chunk:
                worker.counter("c").inc(value)
                worker.histogram("h").observe(value)
            parent.merge(worker.snapshot())
        assert parent.snapshot() == serial.snapshot()

    def test_to_jsonl_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(2)
        registry.histogram("h").observe(1.0)
        parsed = [json.loads(line) for line in registry.to_jsonl().splitlines()]
        kinds = {(entry["kind"], entry["name"]) for entry in parsed}
        assert kinds == {("counter", "c"), ("gauge", "g"), ("histogram", "h")}

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestContextLocalRegistry:
    def test_helpers_write_to_active_registry(self):
        with registry_override() as registry:
            counter("c").inc()
            gauge("g").set(2)
            histogram("h").observe(3.0)
            assert registry.counter("c").value == 1.0
            assert active_registry() is registry

    def test_override_isolates_from_default(self):
        baseline = active_registry().counter("isolation.probe").value
        with registry_override():
            counter("isolation.probe").inc(100)
        assert active_registry().counter("isolation.probe").value == baseline

    def test_override_restores_on_exception(self):
        outer = active_registry()
        with pytest.raises(RuntimeError):
            with registry_override():
                raise RuntimeError("boom")
        assert active_registry() is outer
