"""Tests of span collection, the disabled no-op path, and grafting."""

from __future__ import annotations

import json
import tracemalloc

import pytest

from repro.obs import (
    NULL_SPAN,
    ManualClock,
    SpanRecord,
    build_tree,
    current_tracer,
    span,
    trace_settings,
    tracing,
    tracing_active,
)


class TestDisabledPath:
    """Satellite (c): tracing off must cost (almost) nothing."""

    def test_span_returns_shared_singleton(self):
        assert span("anything") is NULL_SPAN
        assert span("else", net="x", index=3) is span("anything")

    def test_null_span_is_reusable_context_manager(self):
        with span("a") as first:
            with span("b") as second:
                assert first is second is NULL_SPAN

    def test_set_is_chainable_noop(self):
        assert NULL_SPAN.set(states=5, residual=1e-12) is NULL_SPAN

    def test_null_span_does_not_swallow_exceptions(self):
        with pytest.raises(ValueError):
            with span("x"):
                raise ValueError("must propagate")

    def test_tracing_inactive_by_default(self):
        assert not tracing_active()
        assert current_tracer() is None
        assert trace_settings()["enabled"] is False

    def test_disabled_span_allocates_nothing_lasting(self):
        """Entering/exiting a disabled span leaves no allocation behind."""

        def burst(n=100):
            for _ in range(n):
                with span("noop", index=0) as sp:
                    sp.set(value=1)

        burst()  # warm up interned ints, bytecode caches, etc.
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        burst()
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        leaked = sum(
            stat.size_diff for stat in after.compare_to(before, "filename")
            if stat.size_diff > 0
        )
        # tracemalloc's own bookkeeping costs a few hundred bytes; 100
        # surviving span objects would cost far more.
        assert leaked < 2048


class TestActiveTracing:
    def test_records_nested_spans_in_start_order(self):
        with tracing(clock=ManualClock()) as tracer:
            with span("outer", net="demo"):
                with span("inner.a"):
                    pass
                with span("inner.b"):
                    pass
        names = [record.name for record in tracer.records]
        assert names == ["outer", "inner.a", "inner.b"]
        outer, inner_a, inner_b = tracer.records
        assert outer.parent_id is None
        assert inner_a.parent_id == outer.span_id
        assert inner_b.parent_id == outer.span_id

    def test_attrs_and_measures_are_kept_apart(self):
        with tracing(clock=ManualClock()) as tracer:
            with span("solve", net="demo") as sp:
                sp.set(states=42, residual=1e-14)
        (record,) = tracer.records
        assert record.attrs == {"net": "demo"}
        assert record.measures == {"states": 42, "residual": 1e-14}

    def test_manual_clock_gives_deterministic_timestamps(self):
        def run():
            with tracing(clock=ManualClock()) as tracer:
                with span("outer"):
                    with span("inner"):
                        pass
            return [(r.start, r.end) for r in tracer.records]

        assert run() == run() == [(0.0, 3.0), (1.0, 2.0)]

    def test_exception_closes_span_with_error_status(self):
        with pytest.raises(RuntimeError):
            with tracing(clock=ManualClock()) as tracer:
                with span("doomed"):
                    raise RuntimeError("boom")
        (record,) = tracer.records
        assert record.status == "error"
        assert record.end is not None

    def test_tracer_uninstalled_after_block(self):
        with tracing():
            assert tracing_active()
            assert trace_settings()["enabled"] is True
        assert not tracing_active()

    def test_to_jsonl_one_parseable_object_per_record(self):
        with tracing(clock=ManualClock()) as tracer:
            with span("a", k=1):
                with span("b"):
                    pass
        lines = tracer.to_jsonl().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert [p["name"] for p in parsed] == ["a", "b"]
        assert parsed[0]["attrs"] == {"k": 1}
        assert parsed[1]["parent_id"] == parsed[0]["span_id"]


class TestGraft:
    def _capture(self, name):
        with tracing(clock=ManualClock()) as worker:
            with span(name, index=0):
                with span(f"{name}.child"):
                    pass
        return worker.records

    def test_graft_reparents_roots_under_current_span(self):
        shipped = self._capture("point")
        with tracing(clock=ManualClock()) as parent:
            with span("sweep"):
                parent.graft(shipped)
        (root,) = parent.roots()
        assert root.name == "sweep"
        assert [child.name for child in root.children] == ["point"]
        assert [g.name for g in root.children[0].children] == ["point.child"]

    def test_graft_offsets_ids_per_batch(self):
        first = self._capture("p0")
        second = self._capture("p1")
        with tracing(clock=ManualClock()) as parent:
            with span("sweep"):
                parent.graft(first)
                parent.graft(second)
        ids = [record.span_id for record in parent.records]
        assert len(set(ids)) == len(ids), "grafted ids must not collide"
        (root,) = parent.roots()
        assert [child.name for child in root.children] == ["p0", "p1"]

    def test_graft_empty_is_noop(self):
        with tracing() as tracer:
            tracer.graft([])
        assert tracer.records == []

    def test_graft_without_open_span_adds_roots(self):
        shipped = self._capture("orphan")
        with tracing() as tracer:
            tracer.graft(shipped)
        roots = tracer.roots()
        assert [root.name for root in roots] == ["orphan"]


class TestTreeAssembly:
    def test_build_tree_preserves_child_order(self):
        records = [
            SpanRecord(span_id=0, parent_id=None, name="r", attrs={}, start=0, end=9),
            SpanRecord(span_id=1, parent_id=0, name="b", attrs={}, start=1, end=2),
            SpanRecord(span_id=2, parent_id=0, name="a", attrs={}, start=3, end=4),
        ]
        (root,) = build_tree(records)
        assert [child.name for child in root.children] == ["b", "a"]

    def test_self_time_subtracts_children(self):
        records = [
            SpanRecord(span_id=0, parent_id=None, name="r", attrs={}, start=0, end=10),
            SpanRecord(span_id=1, parent_id=0, name="c", attrs={}, start=2, end=5),
        ]
        (root,) = build_tree(records)
        assert root.duration == 10
        assert root.self_time == 7
        assert root.children[0].self_time == 3

    def test_normalized_drops_timings_measures_status(self):
        with tracing(clock=ManualClock()) as tracer:
            with span("solve", net="demo") as sp:
                sp.set(cache="hit")
        (root,) = tracer.roots()
        assert root.normalized() == {
            "name": "solve",
            "attrs": {"net": "demo"},
            "children": [],
        }

    def test_normalized_sorts_attrs(self):
        with tracing(clock=ManualClock()) as tracer:
            with span("s", zeta=1, alpha=2):
                pass
        (root,) = tracer.roots()
        assert list(root.normalized()["attrs"]) == ["alpha", "zeta"]

    def test_walk_is_depth_first(self):
        with tracing(clock=ManualClock()) as tracer:
            with span("r"):
                with span("a"):
                    with span("a1"):
                        pass
                with span("b"):
                    pass
        (root,) = tracer.roots()
        assert [node.name for node in root.walk()] == ["r", "a", "a1", "b"]
