"""Satellite (a): corrupt cache entries are counted, logged, recomputed."""

from __future__ import annotations

import logging

import numpy as np

from repro.dspn.steady_state import solve_steady_state
from repro.engine import cache_override
from repro.obs import registry_override
from repro.perception.no_rejuvenation import build_no_rejuvenation_net
from repro.perception.parameters import PerceptionParameters


def _poison_single_entry(directory) -> None:
    (path,) = sorted(directory.glob("*/*.pkl"))
    path.write_bytes(b"not a cache entry")


class TestCorruptEntryObservability:
    def test_rejection_warns_once_and_counts(self, tmp_path, caplog):
        net = build_no_rejuvenation_net(
            PerceptionParameters.four_version_defaults()
        )
        with cache_override(enabled=True, directory=tmp_path):
            honest = solve_steady_state(net)
        _poison_single_entry(tmp_path)

        with registry_override() as registry:
            with caplog.at_level(logging.WARNING, logger="repro.engine.cache"):
                with cache_override(enabled=True, directory=tmp_path) as cache:
                    recomputed = solve_steady_state(net)
                    assert cache.rejected == 1

        warnings = [
            record for record in caplog.records
            if record.name == "repro.engine.cache"
        ]
        assert len(warnings) == 1, "exactly one line per rejected entry"
        assert "corrupt" in warnings[0].getMessage()
        assert "recomputing" in warnings[0].getMessage()
        assert registry.counter("engine.cache.rejected").value == 1.0
        np.testing.assert_array_equal(recomputed.pi, honest.pi)

    def test_hit_miss_eviction_counters(self, tmp_path):
        net = build_no_rejuvenation_net(
            PerceptionParameters.four_version_defaults()
        )
        with registry_override() as registry:
            with cache_override(enabled=True, directory=None):
                solve_steady_state(net)  # miss + compute
                solve_steady_state(net)  # in-memory hit
        assert registry.counter("engine.cache.misses").value == 1.0
        assert registry.counter("engine.cache.hits").value == 1.0
        assert registry.counter("engine.cache.rejected").value == 0.0

    def test_disk_hits_and_evictions_surface_as_metrics(self, tmp_path):
        net = build_no_rejuvenation_net(
            PerceptionParameters.four_version_defaults()
        )
        with cache_override(enabled=True, directory=tmp_path):
            solve_steady_state(net)
        with registry_override() as registry:
            # fresh in-memory tier: the hit must come from disk
            with cache_override(enabled=True, directory=tmp_path):
                solve_steady_state(net)
            assert registry.counter("engine.cache.disk_hits").value == 1.0

            from repro.engine.cache import SolverCache

            tiny = SolverCache(maxsize=1)
            tiny.put("a", 1)
            tiny.put("b", 2)  # evicts "a"
            assert tiny.evictions == 1
            assert registry.counter("engine.cache.evictions").value == 1.0
