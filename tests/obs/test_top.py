"""``repro top``: deterministic frames from recorded event streams.

The dashboard's determinism contract is that a frame is a pure
function of the events folded in — no clock reads — so the committed
JSONL fixture must render byte-identically to the committed golden
frame, here and in CI.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.top import (
    BLOCKS,
    CLEAR,
    TopState,
    follow_file,
    render,
    render_path,
    state_from_lines,
)

FIXTURES = Path(__file__).parent / "fixtures"
EVENTS = FIXTURES / "top_events.jsonl"
GOLDEN = FIXTURES / "top_frame.txt"


# ----------------------------------------------------------------------
# snapshot determinism
# ----------------------------------------------------------------------
def test_fixture_renders_byte_identical_golden_frame():
    frame = render_path(EVENTS)
    assert frame + "\n" == GOLDEN.read_text(encoding="utf-8")


def test_rendering_is_a_pure_function_of_the_events():
    lines = EVENTS.read_text(encoding="utf-8").splitlines()
    first = render(state_from_lines(lines))
    second = render(state_from_lines(lines))
    assert first == second
    # prefix streams render prefix states: no hidden global accumulation
    partial = render(state_from_lines(lines[: len(lines) // 2]))
    assert partial != first


def test_every_fixture_event_kind_is_understood():
    state = state_from_lines(EVENTS.read_text(encoding="utf-8").splitlines())
    assert state.events_seen == 36
    assert (state.hits, state.coalesced, state.misses) == (6, 2, 4)
    assert state.executed == 4
    assert state.inflight == 0
    assert (state.jobs_started, state.jobs_done, state.jobs_failed) == (1, 1, 0)
    assert state.points_done == 2
    assert (state.flags, state.unflags, state.rejuvenations) == (2, 1, 2)
    assert (state.backpressure, state.ratelimited) == (1, 1)
    assert state.latency.count == 4
    assert (state.alerts_fired, state.alerts_resolved) == (2, 1)
    assert state.alerts_pending == 1
    assert state.firing_keys == {"drift:reliability"}


# ----------------------------------------------------------------------
# folding semantics
# ----------------------------------------------------------------------
def test_hit_ratio_counts_coalescing_as_savings():
    state = TopState()
    for kind in ("serve.miss", "serve.cache.hit", "serve.coalesced"):
        state.observe({"event": kind, "ts": 1.0})
    assert state.hit_ratio == pytest.approx(2 / 3)


def test_throughput_window_evicts_old_completions():
    state = TopState(window=10.0)
    state.observe({"event": "serve.cache.hit", "ts": 0.0})
    state.observe({"event": "serve.cache.hit", "ts": 100.0})
    # the ts=0 completion fell out of the 10 s window
    assert len(state.completions) == 1
    assert state.throughput == pytest.approx(1 / 10.0)


def test_inflight_never_goes_negative():
    state = TopState()
    state.observe({"event": "serve.solve.done", "ts": 1.0, "seconds": 0.5})
    assert state.inflight == 0


def test_cli_sweep_points_count_as_completions_but_server_points_do_not():
    cli = TopState()
    cli.observe({"event": "sweep.point.done", "ts": 1.0, "index": 0})
    assert len(cli.completions) == 1
    server = TopState()
    server.observe(
        {"event": "sweep.point.done", "ts": 1.0, "job": "job-000001"}
    )
    # server sweeps already complete via their serve.* cache events
    assert len(server.completions) == 0
    assert server.points_done == 1


def test_unknown_events_count_but_change_nothing_else():
    state = TopState()
    state.observe({"event": "serve.connection.open", "ts": 3.0})
    assert state.events_seen == 1
    assert render(state) == render(state)


# ----------------------------------------------------------------------
# sparklines and layout
# ----------------------------------------------------------------------
def test_sparkline_quiet_series_is_all_baseline_glyphs():
    state = TopState()
    state.observe({"event": "serve.listening", "ts": 100.0})
    line = state.sparkline("flags")
    assert line == BLOCKS[0] * state.buckets_shown


def test_sparkline_peak_bucket_renders_full_block():
    state = TopState(bucket=1.0)
    for _ in range(8):
        state.observe({"event": "monitor.flag", "ts": 10.0})
    state.observe({"event": "monitor.flag", "ts": 12.0})
    line = state.sparkline("flags")
    assert line[-3] == BLOCKS[-1]  # the 8-count bucket
    assert BLOCKS[0] != line[-1] != BLOCKS[-1]  # 1 count: low but visible


def test_render_truncates_to_width():
    state = state_from_lines(EVENTS.read_text(encoding="utf-8").splitlines())
    narrow = render(state, width=20)
    assert all(len(line) <= 20 for line in narrow.splitlines())


# ----------------------------------------------------------------------
# drivers and CLI
# ----------------------------------------------------------------------
def test_follow_file_draws_clear_separated_frames(tmp_path):
    stream = tmp_path / "events.jsonl"
    stream.write_text(EVENTS.read_text(encoding="utf-8"))
    out = io.StringIO()
    frames = follow_file(stream, out=out, max_frames=2, interval=0.0)
    assert frames == 2
    drawn = out.getvalue().split(CLEAR)
    assert drawn[0] == ""  # every frame starts with a clear
    assert drawn[1] == drawn[2] == render_path(EVENTS) + "\n"


def test_top_cli_renders_the_fixture_frame(capsys):
    assert main(["top", "--events", str(EVENTS)]) == 0
    printed = capsys.readouterr().out
    assert printed == GOLDEN.read_text(encoding="utf-8")


def test_top_cli_requires_exactly_one_source():
    with pytest.raises(SystemExit):
        main(["top"])
    with pytest.raises(SystemExit):
        main(["top", "--events", str(EVENTS), "--url", "http://127.0.0.1:1"])


def test_fixture_lines_are_valid_event_dialect():
    for line in EVENTS.read_text(encoding="utf-8").splitlines():
        event = json.loads(line)
        assert "event" in event and "ts" in event
