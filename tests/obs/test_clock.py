"""Tests of the injectable observability clocks."""

from __future__ import annotations

import pytest

from repro.obs import (
    ManualClock,
    MonotonicClock,
    active_clock,
    clock_from_settings,
    clock_settings,
    now,
    use_clock,
)


class TestManualClock:
    def test_reads_advance_by_step(self):
        clock = ManualClock()
        assert [clock.now() for _ in range(4)] == [0.0, 1.0, 2.0, 3.0]

    def test_custom_start_and_step(self):
        clock = ManualClock(start=10.0, step=0.5)
        assert [clock.now() for _ in range(3)] == [10.0, 10.5, 11.0]

    def test_tick_advances_on_top_of_steps(self):
        clock = ManualClock()
        clock.now()
        clock.tick(100.0)
        assert clock.now() == 101.0

    def test_rejects_nonpositive_step(self):
        with pytest.raises(ValueError, match="step"):
            ManualClock(step=0.0)

    def test_rejects_backwards_tick(self):
        with pytest.raises(ValueError, match="backwards"):
            ManualClock().tick(-1.0)

    def test_two_clocks_same_configuration_same_timeline(self):
        a, b = ManualClock(step=2.0), ManualClock(step=2.0)
        assert [a.now() for _ in range(5)] == [b.now() for _ in range(5)]


class TestMonotonicClock:
    def test_is_nondecreasing(self):
        clock = MonotonicClock()
        first, second = clock.now(), clock.now()
        assert second >= first


class TestActiveClock:
    def test_default_is_monotonic(self):
        assert active_clock().kind == "monotonic"

    def test_use_clock_installs_and_restores(self):
        saved = active_clock()
        manual = ManualClock()
        with use_clock(manual):
            assert active_clock() is manual
            assert now() == 0.0
            assert now() == 1.0
        assert active_clock() is saved

    def test_use_clock_restores_on_exception(self):
        saved = active_clock()
        with pytest.raises(RuntimeError):
            with use_clock(ManualClock()):
                raise RuntimeError("boom")
        assert active_clock() is saved


class TestClockSettings:
    def test_monotonic_roundtrip(self):
        assert clock_settings() == {"kind": "monotonic"}
        assert clock_from_settings({"kind": "monotonic"}).kind == "monotonic"

    def test_manual_roundtrip_restarts_at_start(self):
        with use_clock(ManualClock(start=5.0, step=2.0)) as clock:
            clock.now()  # advance the original past its start
            settings = clock_settings()
        assert settings == {"kind": "manual", "start": 5.0, "step": 2.0}
        fresh = clock_from_settings(settings)
        assert fresh.now() == 5.0  # restarted, not resumed
        assert fresh.now() == 7.0
