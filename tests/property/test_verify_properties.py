"""Property-based tests of the verification layer (ISSUE 3, satellite 3).

Two directions:

* *soundness of the linter*: nets drawn with a deliberately injected
  defect (a dead transition fed by a never-marked place, a dangling
  dead-end place) must be flagged with the matching rule id, no matter
  which random healthy net the defect rides on;
* *completeness of the certificates*: across the random-net families the
  simulator-agreement suite already exercises, every analytic solution
  must earn a passing certificate — certificates may never reject a
  correct solver result.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.dspn import solve_steady_state
from repro.engine.cache import cache_override
from repro.petri import NetBuilder
from repro.verify import certify_expected_reward, certify_steady_state, lint_net
from tests.property.test_simulator_agreement import (
    random_clocked_net,
    random_cycle_net,
)


@st.composite
def healthy_cycle_builders(draw):
    """A random live token cycle, returned *unbuilt* so defects can be
    injected before ``build()``."""
    n_places = draw(st.integers(2, 5))
    tokens = draw(st.integers(1, 4))
    rates = [draw(st.floats(0.05, 3.0)) for _ in range(n_places)]
    builder = NetBuilder("prop-cycle")
    names = [f"P{i}" for i in range(n_places)]
    for i, name in enumerate(names):
        builder.place(name, tokens=tokens if i == 0 else 0)
    for i, rate in enumerate(rates):
        builder.exponential(
            f"t{i}",
            rate=rate,
            inputs={names[i]: 1},
            outputs={names[(i + 1) % n_places]: 1},
        )
    return builder, names


class TestMalformedNetsAreFlagged:
    @given(healthy_cycle_builders())
    @settings(max_examples=25, deadline=None)
    def test_injected_dead_transition_is_flagged(self, built):
        builder, names = built
        # a transition fed by a place nothing ever marks: structurally
        # present, semantically dead — exactly rule V001's charter
        builder.place("Starved")
        builder.exponential(
            "starved-t", rate=1.0, inputs={"Starved": 1}, outputs={names[0]: 1}
        )
        report = lint_net(builder.build())
        assert "starved-t" in {f.element for f in report.by_rule("V001")}
        assert not report.ok

    @given(healthy_cycle_builders())
    @settings(max_examples=25, deadline=None)
    def test_injected_dangling_place_is_flagged(self, built):
        builder, _ = built
        # an arc-less place dangling off the net: disconnected (V006)
        builder.place("Dangling")
        report = lint_net(builder.build())
        assert "Dangling" in {f.element for f in report.by_rule("V006")}

    @given(healthy_cycle_builders())
    @settings(max_examples=25, deadline=None)
    def test_healthy_cycles_stay_clean(self, built):
        builder, _ = built
        report = lint_net(builder.build())
        assert report.findings == ()


class TestCertificatesAcceptCorrectSolutions:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_cycle_family_certifies(self, seed):
        net = random_cycle_net(np.random.default_rng(seed))
        with cache_override(enabled=False):
            result = solve_steady_state(net)
        certificate = certify_steady_state(result)
        assert certificate.passed, certificate.render()
        assert certificate.method == "ctmc"

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_clocked_family_certifies(self, seed):
        net = random_clocked_net(np.random.default_rng(seed))
        with cache_override(enabled=False):
            result = solve_steady_state(net)
        certificate = certify_steady_state(result)
        assert certificate.passed, certificate.render()
        assert certificate.method == "mrgp"

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_reward_certificates_accept_expected_reward(self, seed):
        net = random_cycle_net(np.random.default_rng(seed))
        with cache_override(enabled=False):
            result = solve_steady_state(net)
        reward = lambda marking: float(marking["A"])
        value = result.expected_reward(reward)
        checks = certify_expected_reward(result, reward, value)
        assert all(check.passed for check in checks), [
            check.render() for check in checks
        ]
