"""Property-based tests of the Petri net core (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.petri import NetBuilder
from repro.petri.marking import Marking

place_names = st.sampled_from(["A", "B", "C", "D"])


@st.composite
def markings(draw):
    index = {"A": 0, "B": 1, "C": 2, "D": 3}
    counts = tuple(draw(st.integers(0, 10)) for _ in index)
    return Marking(index, counts)


class TestMarkingProperties:
    @given(markings())
    def test_total_tokens_is_sum(self, marking):
        assert marking.total_tokens() == sum(marking.values())

    @given(markings(), st.dictionaries(place_names, st.integers(0, 5), max_size=4))
    def test_after_adds_delta(self, marking, delta):
        result = marking.after(delta)
        for name in marking:
            assert result[name] == marking[name] + delta.get(name, 0)

    @given(markings(), st.dictionaries(place_names, st.integers(0, 5), max_size=4))
    def test_after_roundtrip(self, marking, delta):
        there = marking.after(delta)
        back = there.after({k: -v for k, v in delta.items()})
        assert back == marking

    @given(markings())
    def test_hash_consistent_with_eq(self, marking):
        clone = Marking(marking._index, marking.counts)  # noqa: SLF001
        assert marking == clone
        assert hash(marking) == hash(clone)


@st.composite
def chain_nets(draw):
    """A random token count flowing through a 3-place cycle."""
    tokens = draw(st.integers(1, 8))
    rate1 = draw(st.floats(0.01, 10.0))
    rate2 = draw(st.floats(0.01, 10.0))
    rate3 = draw(st.floats(0.01, 10.0))
    builder = NetBuilder("chain")
    builder.place("A", tokens=tokens).place("B").place("C")
    builder.exponential("ab", rate=rate1, inputs={"A": 1}, outputs={"B": 1})
    builder.exponential("bc", rate=rate2, inputs={"B": 1}, outputs={"C": 1})
    builder.exponential("ca", rate=rate3, inputs={"C": 1}, outputs={"A": 1})
    return builder.build(), tokens


class TestFiringProperties:
    @given(chain_nets())
    @settings(max_examples=30, deadline=None)
    def test_firing_conserves_tokens(self, net_and_tokens):
        net, tokens = net_and_tokens
        marking = net.initial_marking()
        for _ in range(20):
            enabled = net.enabled_transitions(marking)
            if not enabled:
                break
            marking = net.fire(enabled[0], marking)
            assert marking.total_tokens() == tokens

    @given(chain_nets())
    @settings(max_examples=30, deadline=None)
    def test_enabled_iff_positive_degree(self, net_and_tokens):
        net, _ = net_and_tokens
        marking = net.initial_marking()
        for transition in net.transitions.values():
            assert net.is_enabled(transition, marking) == (
                net.enabling_degree(transition, marking) > 0
            )
