"""Randomized agreement tests: DSPN simulator vs analytic solvers.

For a family of randomized small nets (seeded, deterministic), the
discrete-event simulator's long-run time-average must match the
CTMC/MRGP steady state.  This is the end-to-end guarantee the rest of
the library stands on, checked across randomly drawn rate constants and
structures rather than hand-picked examples.
"""

import numpy as np
import pytest

from repro.dspn import simulate, solve_steady_state
from repro.petri import NetBuilder


def random_cycle_net(rng: np.random.Generator):
    """A 3-place token cycle with random rates and token count."""
    tokens = int(rng.integers(1, 5))
    rates = rng.uniform(0.05, 2.0, size=3)
    builder = NetBuilder("rand-cycle")
    builder.place("A", tokens=tokens).place("B").place("C")
    builder.exponential("ab", rate=rates[0], inputs={"A": 1}, outputs={"B": 1})
    builder.exponential("bc", rate=rates[1], inputs={"B": 1}, outputs={"C": 1})
    builder.exponential("ca", rate=rates[2], inputs={"C": 1}, outputs={"A": 1})
    return builder.build()


def random_clocked_net(rng: np.random.Generator):
    """Up/Down with a random deterministic reset racing a random decay."""
    decay = float(rng.uniform(0.05, 0.5))
    repair = float(rng.uniform(0.2, 2.0))
    delay = float(rng.uniform(1.0, 8.0))
    builder = NetBuilder("rand-clocked")
    builder.place("Up", tokens=1).place("Down")
    builder.exponential("decay", rate=decay, inputs={"Up": 1}, outputs={"Down": 1})
    builder.exponential("repair", rate=repair, inputs={"Down": 1}, outputs={"Up": 1})
    builder.deterministic("reset", delay=delay, inputs={"Down": 1}, outputs={"Up": 1})
    return builder.build()


class TestSimulatorAgreesWithCTMC:
    @pytest.mark.parametrize("case_seed", range(6))
    def test_random_cycle(self, case_seed):
        rng = np.random.default_rng(1000 + case_seed)
        net = random_cycle_net(rng)
        analytic = solve_steady_state(net).expected_reward(lambda m: float(m["A"]))
        estimate = simulate(
            net,
            reward=lambda m: float(m["A"]),
            horizon=4000.0,
            warmup=200.0,
            replications=5,
            seed=2000 + case_seed,
        )
        assert abs(estimate.mean - analytic) < max(4 * estimate.half_width, 0.08)


class TestSimulatorAgreesWithMRGP:
    @pytest.mark.parametrize("case_seed", range(6))
    def test_random_clocked(self, case_seed):
        rng = np.random.default_rng(3000 + case_seed)
        net = random_clocked_net(rng)
        analytic = solve_steady_state(net).expected_reward(
            lambda m: float(m["Up"])
        )
        estimate = simulate(
            net,
            reward=lambda m: float(m["Up"]),
            horizon=4000.0,
            warmup=100.0,
            replications=5,
            seed=4000 + case_seed,
        )
        assert abs(estimate.mean - analytic) < max(4 * estimate.half_width, 0.05)
