"""Property tests for the sparse stationary solvers.

Random ergodic CTMC families: sparse GMRES, sparse BiCGStab, dense LU,
and power iteration must all land on the same stationary vector; random
reducible families must raise the same typed error with the same text
on the dense and the sparse route.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.markov.linear import solve_stationary
from repro.markov.sparse import stationary_distribution_sparse


@st.composite
def ergodic_generators(draw):
    """Random irreducible generators: sparse random edges plus a ring."""
    n = draw(st.integers(min_value=2, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    generator = np.zeros((n, n))
    out_degree = min(n - 1, int(draw(st.integers(min_value=1, max_value=5))))
    for i in range(n):
        others = [j for j in range(n) if j != i]
        targets = rng.choice(others, size=out_degree, replace=False)
        generator[i, targets] = rng.uniform(0.05, 5.0, size=out_degree)
        generator[i, (i + 1) % n] += rng.uniform(0.1, 1.0)
    np.fill_diagonal(generator, -generator.sum(axis=1))
    return generator


@st.composite
def reducible_generators(draw):
    """Block-diagonal generators with two isolated recurrent cycles."""
    sizes = (
        draw(st.integers(min_value=2, max_value=6)),
        draw(st.integers(min_value=2, max_value=6)),
    )
    rate_seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(rate_seed)
    n = sum(sizes)
    generator = np.zeros((n, n))
    offset = 0
    for size in sizes:
        for i in range(size):
            j = (i + 1) % size
            generator[offset + i, offset + j] = rng.uniform(0.1, 3.0)
        offset += size
    np.fill_diagonal(generator, -generator.sum(axis=1))
    return generator


class TestAllRoutesAgree:
    @settings(max_examples=40, deadline=None)
    @given(generator=ergodic_generators())
    def test_gmres_bicgstab_power_and_dense_lu_agree(self, generator):
        expected = solve_stationary(generator, what="dense")
        csr = sp.csr_array(generator)
        for solver in ("gmres", "bicgstab", "power"):
            pi, info = stationary_distribution_sparse(
                csr, solver=solver, what="sparse"
            )
            np.testing.assert_allclose(
                pi, expected, atol=1e-8, rtol=0.0,
                err_msg=f"{solver} disagrees with dense LU",
            )
            assert info.residual <= info.tolerance
            assert abs(pi.sum() - 1.0) <= 1e-12
            assert pi.min() >= 0.0


class TestReducibleChains:
    @settings(max_examples=25, deadline=None)
    @given(generator=reducible_generators())
    def test_both_routes_raise_the_same_error(self, generator):
        with pytest.raises(SolverError) as dense_error:
            solve_stationary(generator, what="chain")
        with pytest.raises(SolverError) as sparse_error:
            stationary_distribution_sparse(sp.csr_array(generator), what="chain")
        assert "not unique" in str(sparse_error.value)
        assert str(sparse_error.value) == str(dense_error.value)
