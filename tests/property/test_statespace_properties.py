"""Property-based tests of reachability + vanishing elimination."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.dspn import solve_steady_state
from repro.petri import NetBuilder
from repro.statespace import tangible_reachability


@st.composite
def module_cycle_nets(draw):
    """Randomized instances of the paper's module life-cycle net."""
    n = draw(st.integers(1, 6))
    lam_c = draw(st.floats(1e-4, 1.0))
    lam_f = draw(st.floats(1e-4, 1.0))
    mu = draw(st.floats(1e-3, 2.0))
    builder = NetBuilder("cycle")
    builder.place("H", tokens=n).place("C").place("F")
    builder.exponential("c", rate=lam_c, inputs={"H": 1}, outputs={"C": 1})
    builder.exponential("f", rate=lam_f, inputs={"C": 1}, outputs={"F": 1})
    builder.exponential("r", rate=mu, inputs={"F": 1}, outputs={"H": 1})
    return builder.build(), n


class TestStateSpaceProperties:
    @given(module_cycle_nets())
    @settings(max_examples=30, deadline=None)
    def test_state_count_is_simplex_size(self, net_n):
        net, n = net_n
        graph = tangible_reachability(net)
        expected = (n + 1) * (n + 2) // 2
        assert graph.n_states == expected

    @given(module_cycle_nets())
    @settings(max_examples=30, deadline=None)
    def test_tokens_conserved_in_every_marking(self, net_n):
        net, n = net_n
        graph = tangible_reachability(net)
        for marking in graph.markings:
            assert marking.total_tokens() == n

    @given(module_cycle_nets())
    @settings(max_examples=20, deadline=None)
    def test_steady_state_is_distribution(self, net_n):
        net, _ = net_n
        result = solve_steady_state(net)
        assert np.all(result.pi >= 0)
        assert np.isclose(result.pi.sum(), 1.0)

    @given(module_cycle_nets())
    @settings(max_examples=20, deadline=None)
    def test_initial_distribution_is_distribution(self, net_n):
        net, _ = net_n
        graph = tangible_reachability(net)
        assert np.isclose(sum(graph.initial_distribution), 1.0)
        assert all(p >= 0 for p in graph.initial_distribution)


@st.composite
def weighted_choice_nets(draw):
    """A vanishing marking splitting over two tangible targets."""
    w1 = draw(st.floats(0.1, 10.0))
    w2 = draw(st.floats(0.1, 10.0))
    builder = NetBuilder("choice")
    builder.place("S", tokens=1).place("X").place("Y")
    builder.immediate("sx", weight=w1, inputs={"S": 1}, outputs={"X": 1})
    builder.immediate("sy", weight=w2, inputs={"S": 1}, outputs={"Y": 1})
    builder.exponential("xBack", rate=1.0, inputs={"X": 1}, outputs={"S": 1})
    builder.exponential("yBack", rate=1.0, inputs={"Y": 1}, outputs={"S": 1})
    return builder.build(), w1, w2


class TestVanishingProperties:
    @given(weighted_choice_nets())
    @settings(max_examples=30, deadline=None)
    def test_split_proportional_to_weights(self, net_w1_w2):
        net, w1, w2 = net_w1_w2
        graph = tangible_reachability(net)
        distribution = {
            marking.compact(): probability
            for marking, probability in zip(graph.markings, graph.initial_distribution)
        }
        assert np.isclose(distribution["X=1"], w1 / (w1 + w2), rtol=1e-9)

    @given(weighted_choice_nets())
    @settings(max_examples=20, deadline=None)
    def test_steady_state_split(self, net_w1_w2):
        net, w1, w2 = net_w1_w2
        result = solve_steady_state(net)
        x = result.probability(lambda m: m["X"] == 1)
        y = result.probability(lambda m: m["Y"] == 1)
        assert np.isclose(x / (x + y), w1 / (w1 + w2), rtol=1e-6)
