"""Property-based tests of the reliability theory (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.nversion.conventions import OutputConvention
from repro.nversion.failure_models import EgeDependentModel
from repro.nversion.reliability import (
    GeneralizedReliability,
    PaperFourVersionReliability,
    PaperSixVersionReliability,
)

probabilities = st.floats(0.0, 1.0)


@st.composite
def four_version_states(draw):
    i = draw(st.integers(0, 4))
    j = draw(st.integers(0, 4 - i))
    return i, j, 4 - i - j


@st.composite
def six_version_states(draw):
    i = draw(st.integers(0, 6))
    j = draw(st.integers(0, 6 - i))
    return i, j, 6 - i - j


# The verbatim appendix formulas are *unnormalized* enumerations; at
# extreme parameter corners (e.g. p = p' = 1, alpha = 0) some formulas
# leave [0, 1] — see test_verbatim_formulas_can_leave_unit_interval.
# Within the paper's operating region they behave as probabilities.
operating_p = st.floats(0.0, 0.3)
operating_pp = st.floats(0.0, 0.8)


class TestPaperFunctionsBounded:
    @given(operating_p, operating_pp, probabilities, four_version_states())
    @settings(max_examples=200, deadline=None)
    def test_four_version_in_unit_interval(self, p, pp, a, state):
        """The verbatim Appendix A formulas stay within [0, 1] over the
        paper's operating region (p <= 0.3, p' <= 0.8)."""
        r = PaperFourVersionReliability(p=p, p_prime=pp, alpha=a)
        assert -1e-9 <= r(*state) <= 1.0 + 1e-9

    @given(operating_p, operating_pp, probabilities, six_version_states())
    @settings(max_examples=200, deadline=None)
    def test_six_version_in_unit_interval(self, p, pp, a, state):
        r = PaperSixVersionReliability(p=p, p_prime=pp, alpha=a)
        assert -1e-9 <= r(*state) <= 1.0 + 1e-9

    def test_verbatim_formulas_can_leave_unit_interval(self):
        """Documented finding: the printed R_{2,3,1} evaluates to -1 at
        the corner (p=1, p'=1, alpha=0) because the 2p(1-a)p'^3 term's
        coefficient over-counts.  The generalized model has no such
        corner (verified by TestGeneralizedProperties.test_bounded over
        the full cube)."""
        r = PaperSixVersionReliability(p=1.0, p_prime=1.0, alpha=0.0)
        assert r(2, 3, 1) == -1.0


class TestGeneralizedProperties:
    @given(probabilities, probabilities, probabilities, six_version_states())
    @settings(max_examples=200, deadline=None)
    def test_bounded(self, p, pp, a, state):
        r = GeneralizedReliability(
            n_modules=6, threshold=4, p=p, p_prime=pp, alpha=a
        )
        assert -1e-9 <= r(*state) <= 1.0 + 1e-9

    @given(probabilities, probabilities, four_version_states())
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_p_prime(self, p, a, state):
        """More compromised inaccuracy can never raise reliability."""
        low = GeneralizedReliability(
            n_modules=4, threshold=3, p=p, p_prime=0.2, alpha=a
        )
        high = GeneralizedReliability(
            n_modules=4, threshold=3, p=p, p_prime=0.8, alpha=a
        )
        assert high(*state) <= low(*state) + 1e-9

    @given(probabilities, probabilities, four_version_states())
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_p(self, pp, a, state):
        low = GeneralizedReliability(
            n_modules=4, threshold=3, p=0.05, p_prime=pp, alpha=a
        )
        high = GeneralizedReliability(
            n_modules=4, threshold=3, p=0.6, p_prime=pp, alpha=a
        )
        assert high(*state) <= low(*state) + 1e-9

    @given(probabilities, probabilities, probabilities, six_version_states())
    @settings(max_examples=150, deadline=None)
    def test_strict_not_above_safe_skip(self, p, pp, a, state):
        safe = GeneralizedReliability(
            n_modules=6, threshold=4, p=p, p_prime=pp, alpha=a,
            convention=OutputConvention.SAFE_SKIP,
        )
        strict = GeneralizedReliability(
            n_modules=6, threshold=4, p=p, p_prime=pp, alpha=a,
            convention=OutputConvention.STRICT_CORRECT,
        )
        assert strict(*state) <= safe(*state) + 1e-9

    @given(probabilities, probabilities, st.integers(0, 6))
    @settings(max_examples=100, deadline=None)
    def test_zero_when_below_threshold(self, p, pp, operational):
        r = GeneralizedReliability(
            n_modules=6, threshold=4, p=p, p_prime=pp, alpha=0.5
        )
        i = operational
        state_value = r(i, 0, 6 - i)
        if i < 4:
            assert state_value == 0.0


class TestFailureModelProperties:
    @given(probabilities, probabilities, st.integers(1, 8))
    @settings(max_examples=200, deadline=None)
    def test_normalized_model_sums_to_one(self, p, a, group):
        model = EgeDependentModel(p=p, alpha=a, paper_combinatorics=False)
        total = sum(model.probability_exactly(m, group) for m in range(group + 1))
        assert abs(total - 1.0) < 1e-9

    @given(probabilities, probabilities, st.integers(1, 8), st.integers(0, 8))
    @settings(max_examples=200, deadline=None)
    def test_tail_monotone(self, p, a, group, m):
        model = EgeDependentModel(p=p, alpha=a, paper_combinatorics=False)
        assert model.probability_at_least(m, group) >= model.probability_at_least(
            m + 1, group
        ) - 1e-12
