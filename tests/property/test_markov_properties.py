"""Property-based tests of the Markov substrate (hypothesis)."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.markov.ctmc import CTMC
from repro.markov.dtmc import DTMC
from repro.markov.mrgp import solve_mrgp
from repro.markov.uniformization import expm_and_integral


@st.composite
def irreducible_generators(draw, max_states=5):
    """Random generator with a strictly-positive cycle (irreducible)."""
    n = draw(st.integers(2, max_states))
    rates = draw(
        st.lists(
            st.lists(st.floats(0.0, 5.0), min_size=n, max_size=n),
            min_size=n,
            max_size=n,
        )
    )
    matrix = np.array(rates)
    np.fill_diagonal(matrix, 0.0)
    # guarantee irreducibility via a cycle
    for i in range(n):
        matrix[i, (i + 1) % n] += 0.1
    np.fill_diagonal(matrix, -matrix.sum(axis=1))
    return matrix


class TestCTMCProperties:
    @given(irreducible_generators())
    @settings(max_examples=30, deadline=None)
    def test_stationary_is_distribution(self, generator):
        pi = CTMC(generator).stationary_distribution()
        assert np.all(pi >= 0)
        assert np.isclose(pi.sum(), 1.0)

    @given(irreducible_generators())
    @settings(max_examples=30, deadline=None)
    def test_stationary_is_fixed_point(self, generator):
        pi = CTMC(generator).stationary_distribution()
        assert np.allclose(pi @ generator, 0.0, atol=1e-8)

    @given(irreducible_generators(), st.floats(0.0, 20.0))
    @settings(max_examples=30, deadline=None)
    def test_transient_stays_distribution(self, generator, t):
        chain = CTMC(generator)
        initial = np.zeros(chain.n_states)
        initial[0] = 1.0
        distribution = chain.transient(initial, t)
        assert np.all(distribution >= -1e-12)
        assert np.isclose(distribution.sum(), 1.0, atol=1e-9)

    @given(irreducible_generators())
    @settings(max_examples=20, deadline=None)
    def test_stationary_invariant_under_transient(self, generator):
        chain = CTMC(generator)
        pi = chain.stationary_distribution()
        assert np.allclose(chain.transient(pi, 3.0), pi, atol=1e-8)


class TestExpmIntegralProperties:
    @given(irreducible_generators(), st.floats(0.01, 10.0))
    @settings(max_examples=20, deadline=None)
    def test_integral_rowsum_equals_time(self, generator, t):
        """For a proper generator, total integrated occupancy is t."""
        _, integral = expm_and_integral(generator, t)
        assert np.allclose(integral.sum(axis=1), t, rtol=1e-8)


@st.composite
def mrgp_problems(draw, max_states=4):
    n = draw(st.integers(2, max_states))
    kernel = np.zeros((n, n))
    for i in range(n):
        row = [draw(st.floats(0.01, 1.0)) for _ in range(n)]
        kernel[i] = np.array(row) / sum(row)
    sojourn = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            sojourn[i, j] = draw(st.floats(0.0, 5.0))
        sojourn[i, i] += 0.1  # positive cycle lengths
    return kernel, sojourn


class TestMRGPProperties:
    @given(mrgp_problems())
    @settings(max_examples=30, deadline=None)
    def test_solution_is_distribution(self, problem):
        kernel, sojourn = problem
        result = solve_mrgp(kernel, sojourn)
        assert np.all(result.pi >= 0)
        assert np.isclose(result.pi.sum(), 1.0)
        assert result.expected_cycle_length > 0

    @given(mrgp_problems())
    @settings(max_examples=30, deadline=None)
    def test_phi_is_embedded_stationary(self, problem):
        kernel, sojourn = problem
        result = solve_mrgp(kernel, sojourn)
        assert np.allclose(result.phi @ kernel, result.phi, atol=1e-8)


class TestDTMCProperties:
    @given(mrgp_problems())
    @settings(max_examples=20, deadline=None)
    def test_step_preserves_distribution(self, problem):
        kernel, _ = problem
        chain = DTMC(kernel)
        distribution = np.zeros(chain.n_states)
        distribution[0] = 1.0
        stepped = chain.step(distribution, n=3)
        assert np.isclose(stepped.sum(), 1.0)
        assert np.all(stepped >= 0)
