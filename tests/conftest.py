"""Shared fixtures: small reference nets and parameter sets."""

from __future__ import annotations

import pytest

from repro.perception.parameters import PerceptionParameters
from repro.petri import NetBuilder


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        type=int,
        default=4,
        help="worker processes exercised by the engine differential tests",
    )


@pytest.fixture
def engine_jobs(request) -> int:
    """The --jobs value the parallel differential tests run with."""
    return request.config.getoption("--jobs")


@pytest.fixture
def two_state_net():
    """A minimal up/down repairable component (2-state CTMC)."""
    builder = NetBuilder("two-state")
    builder.place("Up", tokens=1)
    builder.place("Down")
    builder.exponential("fail", rate=0.01, inputs={"Up": 1}, outputs={"Down": 1})
    builder.exponential("repair", rate=0.5, inputs={"Down": 1}, outputs={"Up": 1})
    return builder.build()


@pytest.fixture
def immediate_chain_net():
    """A net whose initial marking resolves through two immediate firings."""
    builder = NetBuilder("immediate-chain")
    builder.place("A", tokens=1)
    builder.place("B")
    builder.place("C")
    builder.place("D")
    builder.immediate("iAB", inputs={"A": 1}, outputs={"B": 1})
    builder.immediate("iBC", inputs={"B": 1}, outputs={"C": 1})
    builder.exponential("tCD", rate=1.0, inputs={"C": 1}, outputs={"D": 1})
    builder.exponential("tDC", rate=2.0, inputs={"D": 1}, outputs={"C": 1})
    return builder.build()


@pytest.fixture
def clocked_net():
    """A deterministic clock resetting a token that decays exponentially.

    One token decays Up -> Down at rate 0.1; a deterministic transition
    with delay 2.0 moves Down back to Up (when Down is marked) — the
    smallest net exercising the MRGP path.
    """
    builder = NetBuilder("clocked")
    builder.place("Up", tokens=1)
    builder.place("Down")
    builder.exponential("decay", rate=0.1, inputs={"Up": 1}, outputs={"Down": 1})
    builder.deterministic("reset", delay=2.0, inputs={"Down": 1}, outputs={"Up": 1})
    return builder.build()


@pytest.fixture
def four_version_parameters():
    return PerceptionParameters.four_version_defaults()


@pytest.fixture
def six_version_parameters():
    return PerceptionParameters.six_version_defaults()
