"""Tests for accumulated rewards and expected misperception counts."""

import numpy as np
import pytest

from repro.errors import UnsupportedModelError
from repro.markov.ctmc import CTMC
from repro.perception.metrics import expected_misperceptions
from repro.perception.parameters import PerceptionParameters


class TestAccumulatedReward:
    def test_constant_reward_accumulates_linearly(self):
        chain = CTMC(np.array([[-1.0, 1.0], [4.0, -4.0]]))
        value = chain.accumulated_reward([1.0, 0.0], [1.0, 1.0], 5.0)
        assert np.isclose(value, 5.0)

    def test_matches_quadrature_of_transient_reward(self):
        chain = CTMC(np.array([[-1.0, 1.0], [4.0, -4.0]]))
        rewards = np.array([1.0, 0.0])
        t = 2.0
        steps = 4000
        dt = t / steps
        quad = sum(
            chain.transient_reward([1.0, 0.0], rewards, (k + 0.5) * dt) * dt
            for k in range(steps)
        )
        exact = chain.accumulated_reward([1.0, 0.0], rewards, t)
        assert np.isclose(exact, quad, rtol=1e-5)

    def test_long_horizon_approaches_stationary_rate(self):
        chain = CTMC(np.array([[-1.0, 1.0], [4.0, -4.0]]))
        rewards = np.array([1.0, 0.0])
        t = 1000.0
        value = chain.accumulated_reward([0.0, 1.0], rewards, t)
        assert np.isclose(value / t, 0.8, atol=1e-3)


class TestExpectedMisperceptions:
    def test_zero_mission_time(self, four_version_parameters):
        assert expected_misperceptions(four_version_parameters, 0.0, 10.0) == 0.0

    def test_grows_with_mission_time(self, four_version_parameters):
        short = expected_misperceptions(four_version_parameters, 3600.0, 10.0)
        long = expected_misperceptions(four_version_parameters, 7200.0, 10.0)
        assert 0.0 < short < long

    def test_superlinear_early_growth(self, four_version_parameters):
        """A fresh system degrades over the mission, so the second hour
        contributes more errors than the first."""
        first = expected_misperceptions(four_version_parameters, 3600.0, 10.0)
        both = expected_misperceptions(four_version_parameters, 7200.0, 10.0)
        assert both - first > first

    def test_scales_with_request_rate(self, four_version_parameters):
        slow = expected_misperceptions(four_version_parameters, 3600.0, 1.0)
        fast = expected_misperceptions(four_version_parameters, 3600.0, 10.0)
        assert np.isclose(fast, 10.0 * slow)

    def test_long_mission_matches_steady_state_rate(self, four_version_parameters):
        from repro.perception.evaluation import evaluate

        steady = evaluate(four_version_parameters).expected_reliability
        mission = 3.0e6
        errors = expected_misperceptions(four_version_parameters, mission, 1.0)
        assert np.isclose(errors / mission, 1.0 - steady, rtol=0.02)

    def test_rejuvenating_rejected(self, six_version_parameters):
        with pytest.raises(UnsupportedModelError):
            expected_misperceptions(six_version_parameters, 3600.0, 10.0)

    def test_invalid_rate_rejected(self, four_version_parameters):
        with pytest.raises(UnsupportedModelError):
            expected_misperceptions(four_version_parameters, 3600.0, 0.0)
