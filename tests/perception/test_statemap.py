"""Tests for marking -> (i, j, k) mapping."""

from repro.perception.no_rejuvenation import build_no_rejuvenation_net
from repro.perception.parameters import PerceptionParameters
from repro.perception.rejuvenation import build_rejuvenation_net
from repro.perception.statemap import module_counts


class TestModuleCounts:
    def test_no_rejuvenation_net(self):
        net = build_no_rejuvenation_net(PerceptionParameters.four_version_defaults())
        counts = module_counts(net.marking({"Pmh": 2, "Pmc": 1, "Pmf": 1}))
        assert counts == (2, 1, 1)
        assert counts.healthy == 2
        assert counts.operational == 3
        assert counts.total == 4

    def test_rejuvenating_counts_as_unavailable(self):
        net = build_rejuvenation_net(PerceptionParameters.six_version_defaults())
        marking = net.marking({"Pmh": 4, "Pmc": 1, "Pmr": 1, "Prc": 1})
        counts = module_counts(marking)
        assert counts.unavailable == 1
        assert counts.operational == 5

    def test_failed_and_rejuvenating_summed(self):
        net = build_rejuvenation_net(
            PerceptionParameters(n_modules=9, f=1, r=2, rejuvenation=True)
        )
        marking = net.marking({"Pmh": 5, "Pmc": 1, "Pmf": 1, "Pmr": 2, "Prc": 1})
        assert module_counts(marking) == (5, 1, 3)

    def test_clock_places_ignored(self):
        net = build_rejuvenation_net(PerceptionParameters.six_version_defaults())
        marking = net.marking({"Pmh": 6, "Ptr": 1, "Pac": 1})
        assert module_counts(marking) == (6, 0, 0)
