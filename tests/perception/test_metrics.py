"""Tests for the domain dependability metrics."""

import numpy as np
import pytest

from repro.errors import UnsupportedModelError
from repro.perception.metrics import (
    exact_rate_elasticities,
    mean_time_to_quorum_loss,
    quorum_loss_probability,
)
from repro.perception.parameters import PerceptionParameters


class TestMeanTimeToQuorumLoss:
    def test_positive_and_large(self, four_version_parameters):
        """With 3 s repairs, double outages are rare: MTTQL >> mttc."""
        value = mean_time_to_quorum_loss(four_version_parameters)
        assert value > 10 * four_version_parameters.mttc

    def test_faster_repair_extends_time(self, four_version_parameters):
        slow = four_version_parameters.replace(mttr=30.0)
        fast = four_version_parameters.replace(mttr=0.3)
        assert mean_time_to_quorum_loss(fast) > mean_time_to_quorum_loss(slow)

    def test_rejuvenating_configuration_rejected(self, six_version_parameters):
        with pytest.raises(UnsupportedModelError):
            mean_time_to_quorum_loss(six_version_parameters)


class TestQuorumLossProbability:
    def test_zero_horizon(self, four_version_parameters):
        assert quorum_loss_probability(four_version_parameters, 0.0) == 0.0

    def test_monotone_in_mission_time(self, four_version_parameters):
        values = [
            quorum_loss_probability(four_version_parameters, t)
            for t in (3600.0, 7200.0, 36000.0)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_short_mission_low_risk(self, four_version_parameters):
        assert quorum_loss_probability(four_version_parameters, 3600.0) < 0.01

    def test_consistent_with_mean_time(self, four_version_parameters):
        """For an (approximately) exponential hitting time,
        P(hit by t) ~ 1 - exp(-t / MTT)."""
        mean_time = mean_time_to_quorum_loss(four_version_parameters)
        horizon = mean_time / 10.0
        probability = quorum_loss_probability(four_version_parameters, horizon)
        approx = 1 - np.exp(-horizon / mean_time)
        assert probability == pytest.approx(approx, rel=0.15)


class TestExactElasticities:
    def test_matches_finite_differences(self, four_version_parameters):
        from repro.analysis.sensitivity import elasticities

        exact = exact_rate_elasticities(four_version_parameters)
        numeric = {
            e.parameter: e.elasticity
            for e in elasticities(
                four_version_parameters, ["mttc", "mttf", "mttr"]
            )
        }
        for name in ("mttc", "mttf", "mttr"):
            assert exact[name] == pytest.approx(numeric[name], abs=1e-3)

    def test_signs(self, four_version_parameters):
        exact = exact_rate_elasticities(four_version_parameters)
        assert exact["mttc"] > 0  # slower compromise helps
        assert exact["mttf"] < 0  # staying compromised longer hurts (at p'=0.5)

    def test_rejuvenating_configuration_rejected(self, six_version_parameters):
        with pytest.raises(UnsupportedModelError):
            exact_rate_elasticities(six_version_parameters)
