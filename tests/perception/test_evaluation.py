"""Tests for the Eq. 1 evaluation pipeline."""

import math

import numpy as np
import pytest

from repro.nversion.conventions import OutputConvention
from repro.nversion.reliability import (
    GeneralizedReliability,
    PaperFourVersionReliability,
    PaperSixVersionReliability,
)
from repro.perception.evaluation import default_reliability_function, evaluate
from repro.perception.parameters import PerceptionParameters


class TestDefaultReliabilityFunction:
    def test_four_version_uses_appendix_a(self, four_version_parameters):
        fn = default_reliability_function(four_version_parameters)
        assert isinstance(fn, PaperFourVersionReliability)

    def test_six_version_uses_appendix_b(self, six_version_parameters):
        fn = default_reliability_function(six_version_parameters)
        assert isinstance(fn, PaperSixVersionReliability)

    def test_other_configurations_use_generalized(self):
        params = PerceptionParameters(n_modules=5, f=1, rejuvenation=False)
        fn = default_reliability_function(params)
        assert isinstance(fn, GeneralizedReliability)
        assert fn.threshold == 3

    def test_strict_convention_forces_generalized(self, four_version_parameters):
        fn = default_reliability_function(
            four_version_parameters, convention=OutputConvention.STRICT_CORRECT
        )
        assert isinstance(fn, GeneralizedReliability)


class TestEvaluate:
    def test_headline_four_version(self, four_version_parameters):
        result = evaluate(four_version_parameters)
        assert math.isclose(result.expected_reliability, 0.8223487, abs_tol=1e-6)

    def test_headline_six_version(self, six_version_parameters):
        result = evaluate(six_version_parameters)
        assert math.isclose(result.expected_reliability, 0.9430077, abs_tol=1e-6)

    def test_state_probabilities_sum_to_one(self, six_version_parameters):
        result = evaluate(six_version_parameters)
        assert np.isclose(sum(result.state_probabilities.values()), 1.0)

    def test_state_reliability_consistent_with_expected(self, four_version_parameters):
        result = evaluate(four_version_parameters)
        recomputed = sum(
            probability * result.state_reliability[state]
            for state, probability in result.state_probabilities.items()
        )
        assert np.isclose(recomputed, result.expected_reliability)

    def test_custom_reliability_function(self, four_version_parameters):
        result = evaluate(four_version_parameters, reliability=_AlwaysOne())
        assert np.isclose(result.expected_reliability, 1.0)

    def test_top_states_ranked(self, six_version_parameters):
        result = evaluate(six_version_parameters)
        top = result.top_states(3)
        probabilities = [probability for _, probability, _ in top]
        assert probabilities == sorted(probabilities, reverse=True)
        assert len(top) == 3

    def test_reliability_between_zero_and_one(self):
        for p_prime in (0.1, 0.5, 0.9):
            params = PerceptionParameters.six_version_defaults(p_prime=p_prime)
            value = evaluate(params).expected_reliability
            assert 0.0 <= value <= 1.0


class _AlwaysOne:
    """Trivial reliability function used to test custom injection."""

    n_modules = 4

    def __call__(self, healthy, compromised, unavailable):
        return 1.0
