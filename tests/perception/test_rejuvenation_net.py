"""Tests for the Fig. 2(b)+(c) rejuvenation net — Table I mechanics."""

import numpy as np
import pytest

from repro.dspn import solve_steady_state
from repro.perception.parameters import PerceptionParameters
from repro.perception.rejuvenation import build_rejuvenation_net
from repro.statespace import tangible_reachability


@pytest.fixture
def net(six_version_parameters):
    return build_rejuvenation_net(six_version_parameters)


class TestStructure:
    def test_all_places_present(self, net):
        assert set(net.places) == {
            "Pmh", "Pmc", "Pmf", "Pmr", "Prc", "Ptr", "Pac",
        }

    def test_all_transitions_present(self, net):
        assert set(net.transitions) == {
            "Tc", "Tf", "Tr", "Trj", "Trc", "Tac", "Trj1", "Trj2", "Trt",
        }

    def test_clock_initially_armed(self, net):
        initial = net.initial_marking()
        assert initial["Prc"] == 1
        assert initial["Pmh"] == 6

    def test_deterministic_clock_delay(self, net, six_version_parameters):
        assert net.transitions["Trc"].delay == six_version_parameters.rejuvenation_interval


class TestTickMechanics:
    """Walk the immediate chain by hand from a tick marking."""

    def test_tick_from_all_healthy_selects_healthy(self, net):
        # after Trc fires: Ptr=1
        marking = net.marking({"Pmh": 6, "Ptr": 1})
        tac = net.transitions["Tac"]
        assert net.is_enabled(tac, marking)
        after_ack = net.fire(tac, marking)
        assert after_ack["Pac"] == 1 and after_ack["Ptr"] == 1

        trj2 = net.transitions["Trj2"]
        trj1 = net.transitions["Trj1"]
        assert net.is_enabled(trj2, after_ack)
        assert not net.is_enabled(trj1, after_ack)  # no compromised module
        after_selection = net.fire(trj2, after_ack)
        assert after_selection["Pmr"] == 1 and after_selection["Pmh"] == 5

        trt = net.transitions["Trt"]
        assert net.is_enabled(trt, after_selection)
        after_reset = net.fire(trt, after_selection)
        assert after_reset["Prc"] == 1 and after_reset["Ptr"] == 0

    def test_guard_g2_blocks_selection_when_module_failed(self, net):
        marking = net.marking({"Pmh": 5, "Pmf": 1, "Ptr": 1, "Pac": 1})
        assert not net.is_enabled(net.transitions["Trj2"], marking)

    def test_guard_g1_blocks_ack_while_rejuvenating(self, net):
        marking = net.marking({"Pmh": 5, "Pmr": 1, "Ptr": 1})
        assert not net.is_enabled(net.transitions["Tac"], marking)
        # but the clock can still reset (g3 holds via Pmr)
        assert net.is_enabled(net.transitions["Trt"], marking)

    def test_weights_proportional_to_pool_sizes(self, net):
        marking = net.marking({"Pmh": 2, "Pmc": 2, "Pac": 1, "Prc": 1})
        w1 = net.transitions["Trj1"].weight_in(marking)
        w2 = net.transitions["Trj2"].weight_in(marking)
        assert np.isclose(w1, 0.5)
        assert np.isclose(w2, 0.5)

    def test_weights_uneven_pools(self, net):
        marking = net.marking({"Pmh": 1, "Pmc": 3, "Pac": 1, "Prc": 1})
        assert np.isclose(net.transitions["Trj1"].weight_in(marking), 0.75)
        assert np.isclose(net.transitions["Trj2"].weight_in(marking), 0.25)

    def test_epsilon_weight_when_pool_empty(self, net):
        marking = net.marking({"Pmh": 6, "Pac": 1, "Prc": 1})
        assert net.transitions["Trj1"].weight_in(marking) == pytest.approx(0.00001)

    def test_rejuvenation_completion_rate(self, net, six_version_parameters):
        marking = net.marking({"Pmh": 5, "Pmr": 1, "Prc": 1})
        trj = net.transitions["Trj"]
        assert net.is_enabled(trj, marking)
        rate = trj.rate_in(marking, net.enabling_degree(trj, marking))
        assert np.isclose(rate, 1 / 3.0)

    def test_rejuvenation_disabled_without_tokens(self, net):
        marking = net.marking({"Pmh": 6, "Prc": 1})
        assert not net.is_enabled(net.transitions["Trj"], marking)

    def test_rejuvenation_completion_returns_module(self, net):
        marking = net.marking({"Pmh": 5, "Pmr": 1, "Prc": 1})
        after = net.fire(net.transitions["Trj"], marking)
        assert after["Pmh"] == 6 and after["Pmr"] == 0


class TestStateSpace:
    def test_every_tangible_marking_has_clock_armed(self, net):
        graph = tangible_reachability(net)
        for marking in graph.markings:
            assert marking["Prc"] == 1
            assert marking["Ptr"] == 0

    def test_module_count_conserved(self, net):
        graph = tangible_reachability(net)
        for marking in graph.markings:
            total = marking["Pmh"] + marking["Pmc"] + marking["Pmf"] + marking["Pmr"]
            assert total == 6

    def test_at_most_r_rejuvenating(self, net):
        graph = tangible_reachability(net)
        assert max(m["Pmr"] for m in graph.markings) == 1

    def test_deferred_activation_tokens_reachable(self, net):
        """Ticks during a failure leave a pending Pac token (deferred)."""
        graph = tangible_reachability(net)
        assert any(m["Pac"] > 0 for m in graph.markings)


class TestSteadyState:
    def test_solved_as_mrgp(self, net):
        result = solve_steady_state(net)
        assert result.method == "mrgp"
        assert np.isclose(result.pi.sum(), 1.0)

    def test_rejuvenation_keeps_modules_healthier(self, six_version_parameters):
        """Compared with the same system without a clock, the rejuvenating
        system has strictly more mass in all-healthy markings."""
        from repro.perception.no_rejuvenation import build_no_rejuvenation_net

        with_clock = solve_steady_state(build_rejuvenation_net(six_version_parameters))
        without = solve_steady_state(
            build_no_rejuvenation_net(six_version_parameters)
        )
        healthy_with = with_clock.probability(lambda m: m["Pmh"] == 6)
        healthy_without = without.probability(lambda m: m["Pmh"] == 6)
        assert healthy_with > healthy_without * 5

    def test_generalizes_to_r2(self):
        """n=9, f=1, r=2 (3f+2r+1=8 <= 9) solves and conserves modules."""
        params = PerceptionParameters(
            n_modules=9, f=1, r=2, rejuvenation=True
        )
        net = build_rejuvenation_net(params)
        result = solve_steady_state(net)
        assert np.isclose(result.pi.sum(), 1.0)
        assert max(m["Pmr"] for m in result.markings) <= 2
