"""Tests for the fleet-scale product net (perception × clock × crews)."""

import pytest

from repro.errors import ParameterError
from repro.perception.fleet import (
    PLACE_CLOCK_SLOTS,
    PLACE_CREWS,
    PLACE_MAINTENANCE,
    FleetParameters,
    build_fleet_net,
)
from repro.perception.parameters import PerceptionParameters
from repro.perception.statemap import module_counts
from repro.statespace import tangible_reachability


def small_fleet(**overrides):
    values = dict(
        perception=PerceptionParameters(n_modules=6, f=1, r=1, rejuvenation=True),
        crews=2,
        clock_slots=2,
    )
    values.update(overrides)
    return FleetParameters(**values)


class TestFleetParameters:
    def test_defaults_are_sized_as_documented(self):
        nv15 = FleetParameters.nv15_defaults()
        assert nv15.perception.n_modules == 15
        assert (nv15.crews, nv15.clock_slots) == (2, 2)
        nv20 = FleetParameters.nv20_defaults()
        assert nv20.perception.n_modules == 20
        assert (nv20.crews, nv20.clock_slots) == (6, 6)

    def test_more_crews_than_modules_is_rejected(self):
        with pytest.raises(ParameterError, match="exceeds the fleet size"):
            small_fleet(crews=7)

    @pytest.mark.parametrize("field", ["crews", "clock_slots"])
    def test_pool_sizes_must_be_positive(self, field):
        with pytest.raises(ParameterError):
            small_fleet(**{field: 0})

    @pytest.mark.parametrize(
        "field", ["mean_maintenance_time", "mean_dispatch_time"]
    )
    def test_times_must_be_positive(self, field):
        with pytest.raises(ParameterError):
            small_fleet(**{field: -1.0})

    def test_defaults_accept_overrides(self):
        parameters = FleetParameters.nv15_defaults(crews=4, clock_slots=3)
        assert (parameters.crews, parameters.clock_slots) == (4, 3)


class TestFleetNetShape:
    def test_net_is_exponential_only(self):
        net = build_fleet_net(small_fleet())
        assert net.deterministic_transitions() == []
        assert net.immediate_transitions() == []
        assert len(net.exponential_transitions()) == 6

    def test_net_name_encodes_the_sizing(self):
        assert build_fleet_net(small_fleet()).name == "fleet-6v-2crew-2slot"

    def test_initial_marking_arms_all_pools(self):
        net = build_fleet_net(small_fleet(crews=3, clock_slots=2))
        marking = net.initial_marking()
        assert marking[PLACE_CREWS] == 3
        assert marking[PLACE_CLOCK_SLOTS] == 2
        assert marking[PLACE_MAINTENANCE] == 0

    def test_every_marking_is_tangible(self):
        graph = tangible_reachability(build_fleet_net(small_fleet()))
        assert not graph.has_deterministic()

    def test_nv15_state_count(self):
        graph = tangible_reachability(
            build_fleet_net(FleetParameters.nv15_defaults())
        )
        assert graph.n_states == 951


class TestFleetConservation:
    def test_modules_and_crews_are_conserved_in_every_marking(self):
        parameters = small_fleet(crews=2, clock_slots=2)
        graph = tangible_reachability(build_fleet_net(parameters))
        n = parameters.perception.n_modules
        for marking in graph.markings:
            counts = module_counts(marking)
            assert counts.healthy + counts.compromised + counts.unavailable == n
            # a busy crew is exactly a module in maintenance
            busy = parameters.crews - marking[PLACE_CREWS]
            assert busy == marking[PLACE_MAINTENANCE]
            assert 0 <= busy <= parameters.crews

    def test_maintenance_counts_as_unavailable(self):
        net = build_fleet_net(small_fleet())
        marking = net.marking({"Pmh": 4, PLACE_MAINTENANCE: 2})
        assert module_counts(marking).unavailable >= 2
