"""Tests for the PerceptionSystem façade."""

import numpy as np
import pytest

from repro.errors import UnsupportedModelError
from repro.perception import PerceptionParameters, PerceptionSystem


class TestFacade:
    def test_expected_reliability_matches_evaluate(self, four_version_parameters):
        system = PerceptionSystem(four_version_parameters)
        assert np.isclose(system.expected_reliability(), 0.8223487, atol=1e-6)

    def test_net_cached(self, four_version_parameters):
        system = PerceptionSystem(four_version_parameters)
        assert system.net is system.net

    def test_analyze_cached(self, four_version_parameters):
        system = PerceptionSystem(four_version_parameters)
        assert system.analyze() is system.analyze()

    def test_rejuvenating_system_uses_clocked_net(self, six_version_parameters):
        system = PerceptionSystem(six_version_parameters)
        assert "Trc" in system.net.transitions

    def test_simulate_agrees_with_analytic(self, four_version_parameters):
        system = PerceptionSystem(four_version_parameters)
        estimate = system.simulate(
            horizon=150000.0, warmup=2000.0, replications=6, seed=10
        )
        assert abs(estimate.mean - system.expected_reliability()) < 0.02

    def test_transient_reliability(self, four_version_parameters):
        system = PerceptionSystem(four_version_parameters)
        trajectory = system.transient_reliability([0.0, 1000.0, 100000.0])
        # fresh system is maximally reliable; decays toward steady state
        assert trajectory.rewards[0] > trajectory.rewards[-1]
        assert np.isclose(
            trajectory.rewards[-1], system.expected_reliability(), atol=1e-3
        )

    def test_transient_rejected_for_rejuvenating(self, six_version_parameters):
        system = PerceptionSystem(six_version_parameters)
        with pytest.raises(UnsupportedModelError):
            system.transient_reliability([1.0])

    def test_to_dot(self, six_version_parameters):
        dot = PerceptionSystem(six_version_parameters).to_dot()
        assert "Pmh" in dot and "Trc" in dot

    def test_simulated_transient_for_rejuvenating(self, six_version_parameters):
        """The Monte-Carlo trajectory covers the clocked system the
        analytic transient refuses."""
        system = PerceptionSystem(six_version_parameters)
        profile = system.transient_reliability_simulated(
            [0.0, 300.0, 5000.0], replications=40, seed=14
        )
        assert profile.times == (0.0, 300.0, 5000.0)
        # fresh system: all six healthy, R(6,0,0) = 0.945 exactly
        assert profile.means[0] == pytest.approx(0.945)
        assert all(0.9 < m <= 1.0 for m in profile.means)

    def test_simulated_transient_matches_analytic_for_clockless(
        self, four_version_parameters
    ):
        system = PerceptionSystem(four_version_parameters)
        times = [0.0, 1000.0, 5000.0]
        exact = system.transient_reliability(times)
        profile = system.transient_reliability_simulated(
            times, replications=150, seed=15
        )
        for analytic_value, mean, half in zip(
            exact.rewards, profile.means, profile.half_widths
        ):
            assert abs(mean - analytic_value) < max(3 * half, 0.02)
