"""Tests for the Fig. 2(a) net builder."""

import numpy as np

from repro.dspn import solve_steady_state
from repro.perception.no_rejuvenation import build_no_rejuvenation_net
from repro.perception.parameters import PerceptionParameters
from repro.petri import ServerSemantics
from repro.statespace import tangible_reachability


class TestStructure:
    def test_places_and_transitions(self, four_version_parameters):
        net = build_no_rejuvenation_net(four_version_parameters)
        assert set(net.places) == {"Pmh", "Pmc", "Pmf"}
        assert set(net.transitions) == {"Tc", "Tf", "Tr"}

    def test_initial_marking_has_n_healthy(self, four_version_parameters):
        net = build_no_rejuvenation_net(four_version_parameters)
        assert net.initial_marking()["Pmh"] == 4

    def test_rates_match_parameters(self, four_version_parameters):
        net = build_no_rejuvenation_net(four_version_parameters)
        marking = net.initial_marking()
        assert net.transitions["Tc"].rate_in(marking, 1) == 1 / 1523
        assert net.transitions["Tf"].rate_in(marking, 1) == 1 / 3000
        assert net.transitions["Tr"].rate_in(marking, 1) == 1 / 3

    def test_single_server_by_default(self, four_version_parameters):
        net = build_no_rejuvenation_net(four_version_parameters)
        marking = net.initial_marking()
        # 4 healthy modules but single-server: rate stays the base rate
        degree = net.enabling_degree(net.transitions["Tc"], marking)
        assert degree == 4
        assert net.transitions["Tc"].rate_in(marking, degree) == 1 / 1523

    def test_infinite_server_option(self, four_version_parameters):
        net = build_no_rejuvenation_net(
            four_version_parameters, server=ServerSemantics.INFINITE
        )
        marking = net.initial_marking()
        assert net.transitions["Tc"].rate_in(marking, 4) == 4 / 1523


class TestStateSpace:
    def test_state_count_is_simplex(self, four_version_parameters):
        # (i, j, k) with i+j+k=4: C(6,2) = 15 states
        graph = tangible_reachability(build_no_rejuvenation_net(four_version_parameters))
        assert graph.n_states == 15

    def test_six_version_state_count(self):
        params = PerceptionParameters(n_modules=6, f=1, rejuvenation=False)
        graph = tangible_reachability(build_no_rejuvenation_net(params))
        assert graph.n_states == 28  # C(8,2)

    def test_module_count_conserved_in_every_marking(self, four_version_parameters):
        graph = tangible_reachability(build_no_rejuvenation_net(four_version_parameters))
        for marking in graph.markings:
            assert marking["Pmh"] + marking["Pmc"] + marking["Pmf"] == 4


class TestSteadyState:
    def test_probabilities_sum_to_one(self, four_version_parameters):
        result = solve_steady_state(build_no_rejuvenation_net(four_version_parameters))
        assert np.isclose(result.pi.sum(), 1.0)

    def test_mass_concentrates_in_operational_states(self, four_version_parameters):
        """With mttr=3 s vs mttc=1523 s, failed states are rare."""
        result = solve_steady_state(build_no_rejuvenation_net(four_version_parameters))
        failed_mass = result.probability(lambda m: m["Pmf"] > 0)
        assert failed_mass < 0.01
