"""Tests for PerceptionParameters (Table II)."""

import pytest

from repro.errors import ParameterError
from repro.perception.parameters import PerceptionParameters


class TestDefaults:
    def test_four_version_defaults_match_table2(self):
        p = PerceptionParameters.four_version_defaults()
        assert p.n_modules == 4
        assert p.f == 1
        assert not p.rejuvenation
        assert p.alpha == 0.5
        assert p.p == 0.08
        assert p.p_prime == 0.5
        assert p.mttc == 1523.0
        assert p.mttf == 3000.0
        assert p.mttr == 3.0
        assert p.rejuvenation_interval == 600.0

    def test_six_version_defaults(self):
        p = PerceptionParameters.six_version_defaults()
        assert p.n_modules == 6
        assert p.rejuvenation
        assert p.r == 1

    def test_overrides(self):
        p = PerceptionParameters.six_version_defaults(p_prime=0.8)
        assert p.p_prime == 0.8
        assert p.n_modules == 6


class TestDerived:
    def test_rates_are_reciprocals(self):
        p = PerceptionParameters.four_version_defaults()
        assert p.lambda_c == 1 / 1523
        assert p.lambda_f == 1 / 3000
        assert p.mu == 1 / 3
        assert p.gamma == 1 / 600

    def test_voting_scheme_without_rejuvenation(self):
        p = PerceptionParameters.four_version_defaults()
        assert p.voting_scheme.threshold == 3

    def test_voting_scheme_with_rejuvenation(self):
        p = PerceptionParameters.six_version_defaults()
        assert p.voting_scheme.threshold == 4

    def test_unavailability_budget(self):
        assert PerceptionParameters.four_version_defaults().unavailability_budget == 1
        assert PerceptionParameters.six_version_defaults().unavailability_budget == 2


class TestValidation:
    def test_too_few_modules_for_f(self):
        with pytest.raises(ParameterError, match="BFT minimum"):
            PerceptionParameters(n_modules=3, f=1)

    def test_too_few_modules_with_rejuvenation(self):
        with pytest.raises(ParameterError):
            PerceptionParameters(n_modules=5, f=1, r=1, rejuvenation=True)

    def test_five_modules_without_rejuvenation_ok(self):
        p = PerceptionParameters(n_modules=5, f=1)
        assert p.n_modules == 5

    def test_invalid_probability(self):
        with pytest.raises(ParameterError):
            PerceptionParameters.four_version_defaults(p=1.5)

    def test_invalid_time(self):
        with pytest.raises(ParameterError):
            PerceptionParameters.four_version_defaults(mttc=0.0)


class TestReplace:
    def test_replace_returns_new_object(self):
        base = PerceptionParameters.four_version_defaults()
        changed = base.replace(p=0.12)
        assert changed.p == 0.12
        assert base.p == 0.08

    def test_replace_revalidates(self):
        base = PerceptionParameters.four_version_defaults()
        with pytest.raises(ParameterError):
            base.replace(alpha=-1.0)
