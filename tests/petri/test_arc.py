"""Tests for repro.petri.arc."""

import pytest

from repro.errors import ModelDefinitionError
from repro.petri.arc import Arc, ArcKind
from repro.petri.marking import Marking

INDEX = {"P": 0}


def marking(p=0):
    return Marking.from_dict(INDEX, {"P": p})


class TestArc:
    def test_constant_multiplicity(self):
        arc = Arc("P", "t", ArcKind.INPUT, 3)
        assert arc.multiplicity_in(marking()) == 3

    def test_default_multiplicity_one(self):
        arc = Arc("P", "t", ArcKind.OUTPUT)
        assert arc.multiplicity_in(marking()) == 1

    def test_marking_dependent_multiplicity(self):
        arc = Arc("P", "t", ArcKind.INPUT, lambda m: min(m["P"], 2))
        assert arc.multiplicity_in(marking(p=5)) == 2
        assert arc.multiplicity_in(marking(p=1)) == 1

    def test_marking_dependent_may_be_zero(self):
        arc = Arc("P", "t", ArcKind.INPUT, lambda m: m["P"])
        assert arc.multiplicity_in(marking(p=0)) == 0

    def test_marking_dependent_negative_rejected(self):
        arc = Arc("P", "t", ArcKind.INPUT, lambda m: -1)
        with pytest.raises(ModelDefinitionError, match="must be >= 0"):
            arc.multiplicity_in(marking())

    def test_constant_zero_rejected(self):
        with pytest.raises(ModelDefinitionError, match=">= 1"):
            Arc("P", "t", ArcKind.INPUT, 0)

    def test_invalid_kind_rejected(self):
        with pytest.raises(ModelDefinitionError):
            Arc("P", "t", "input")  # type: ignore[arg-type]
