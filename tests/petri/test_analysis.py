"""Tests for structural analysis (incidence matrix, invariants)."""

from repro.perception.no_rejuvenation import build_no_rejuvenation_net
from repro.perception.parameters import PerceptionParameters
from repro.perception.rejuvenation import build_rejuvenation_net
from repro.petri import NetBuilder
from repro.petri.analysis import (
    conserved_token_sum,
    incidence_matrix,
    p_invariants,
    t_invariants,
)


def cycle_net():
    """A -> B -> C -> A single-token cycle."""
    builder = NetBuilder("cycle")
    builder.place("A", tokens=1).place("B").place("C")
    builder.exponential("ab", rate=1.0, inputs={"A": 1}, outputs={"B": 1})
    builder.exponential("bc", rate=1.0, inputs={"B": 1}, outputs={"C": 1})
    builder.exponential("ca", rate=1.0, inputs={"C": 1}, outputs={"A": 1})
    return builder.build()


class TestIncidenceMatrix:
    def test_entries(self):
        matrix = incidence_matrix(cycle_net())
        assert matrix.entry("A", "ab") == -1
        assert matrix.entry("B", "ab") == +1
        assert matrix.entry("C", "ab") == 0

    def test_marking_dependent_transitions_flagged(self, six_version_parameters):
        net = build_rejuvenation_net(six_version_parameters)
        matrix = incidence_matrix(net)
        assert "Trj" in matrix.marking_dependent_transitions


class TestPInvariants:
    def test_cycle_has_token_conservation(self):
        invariants = p_invariants(cycle_net())
        assert {"A": 1, "B": 1, "C": 1} in invariants

    def test_paper_net_conserves_module_count(self, four_version_parameters):
        net = build_no_rejuvenation_net(four_version_parameters)
        assert conserved_token_sum(net, ["Pmh", "Pmc", "Pmf"])

    def test_rejuvenation_net_conserves_modules(self, six_version_parameters):
        net = build_rejuvenation_net(six_version_parameters)
        # module count is conserved across Pmh/Pmc/Pmf/Pmr (for the
        # nominal r=1 evaluation of the batch arcs)
        assert conserved_token_sum(net, ["Pmh", "Pmc", "Pmf", "Pmr"])

    def test_rejuvenation_net_does_not_conserve_partial_sum(
        self, six_version_parameters
    ):
        net = build_rejuvenation_net(six_version_parameters)
        assert not conserved_token_sum(net, ["Pmh", "Pmc"])


class TestTInvariants:
    def test_cycle_firing_vector(self):
        invariants = t_invariants(cycle_net())
        assert {"ab": 1, "bc": 1, "ca": 1} in invariants

    def test_acyclic_net_has_no_t_invariant(self):
        builder = NetBuilder("acyclic")
        builder.place("A", tokens=1).place("B")
        builder.exponential("ab", rate=1.0, inputs={"A": 1}, outputs={"B": 1})
        assert t_invariants(builder.build()) == []
