"""Tests for the guard/weight expression DSL."""

from repro.petri.guards import count
from repro.petri.marking import Marking

INDEX = {"Pmh": 0, "Pmc": 1, "Pmf": 2}


def marking(h=0, c=0, f=0):
    return Marking.from_dict(INDEX, {"Pmh": h, "Pmc": c, "Pmf": f})


class TestCount:
    def test_reads_token_count(self):
        assert count("Pmh")(marking(h=3)) == 3


class TestArithmetic:
    def test_addition(self):
        expr = count("Pmh") + count("Pmc")
        assert expr(marking(h=2, c=3)) == 5

    def test_addition_with_constant(self):
        assert (count("Pmh") + 1)(marking(h=2)) == 3
        assert (1 + count("Pmh"))(marking(h=2)) == 3

    def test_subtraction_order(self):
        assert (count("Pmh") - 1)(marking(h=3)) == 2
        assert (10 - count("Pmh"))(marking(h=3)) == 7

    def test_multiplication(self):
        assert (count("Pmh") * 2)(marking(h=3)) == 6
        assert (2 * count("Pmh"))(marking(h=3)) == 6

    def test_division(self):
        expr = count("Pmc") / (count("Pmc") + count("Pmh"))
        assert expr(marking(h=3, c=1)) == 0.25

    def test_rdivision(self):
        assert (6 / count("Pmh"))(marking(h=3)) == 2


class TestComparisons:
    def test_table1_g2(self):
        g2 = (count("Pmf") + count("Pmc")) < 2
        assert g2(marking(f=0, c=1))
        assert not g2(marking(f=1, c=1))

    def test_table1_g3(self):
        g3 = (count("Pmh") + count("Pmc")) > 0
        assert g3(marking(h=1))
        assert not g3(marking())

    def test_equality_guard(self):
        g1 = (count("Pmf") + count("Pmc")) == 0
        assert g1(marking())
        assert not g1(marking(c=1))

    def test_inequality_guard(self):
        guard = count("Pmh") != 0
        assert guard(marking(h=1))
        assert not guard(marking())

    def test_le_and_ge(self):
        assert (count("Pmh") <= 2)(marking(h=2))
        assert (count("Pmh") >= 2)(marking(h=2))
        assert not (count("Pmh") >= 3)(marking(h=2))

    def test_nested_expression_guard(self):
        guard = (count("Pmh") * 2 - count("Pmc")) >= 3
        assert guard(marking(h=2, c=1))
        assert not guard(marking(h=1, c=1))
