"""Tests for Graphviz export."""

from repro.perception.parameters import PerceptionParameters
from repro.perception.rejuvenation import build_rejuvenation_net
from repro.petri.dot import to_dot


class TestToDot:
    def test_contains_all_elements(self, two_state_net):
        dot = to_dot(two_state_net)
        assert dot.startswith("digraph")
        for name in ("Up", "Down", "fail", "repair"):
            assert f'"{name}"' in dot

    def test_place_shows_initial_tokens(self, two_state_net):
        dot = to_dot(two_state_net)
        assert "Up\\n1" in dot

    def test_arcs_have_directions(self, two_state_net):
        dot = to_dot(two_state_net)
        assert '"Up" -> "fail"' in dot
        assert '"fail" -> "Down"' in dot

    def test_transition_kinds_styled_differently(self):
        net = build_rejuvenation_net(PerceptionParameters.six_version_defaults())
        dot = to_dot(net)
        # immediate transitions are thin, deterministic are bold
        assert "height=0.1" in dot  # immediate style present
        assert dot.count("fillcolor=white") >= 4  # exponential transitions

    def test_marking_dependent_arcs_labelled(self):
        net = build_rejuvenation_net(PerceptionParameters.six_version_defaults())
        assert 'label="f(m)"' in to_dot(net)

    def test_balanced_braces(self, clocked_net):
        dot = to_dot(clocked_net)
        assert dot.rstrip().endswith("}")
