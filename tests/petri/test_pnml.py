"""Tests for PNML import/export."""

import numpy as np
import pytest

from repro.dspn import solve_steady_state
from repro.errors import ModelDefinitionError, UnsupportedModelError
from repro.perception.no_rejuvenation import build_no_rejuvenation_net
from repro.perception.parameters import PerceptionParameters
from repro.perception.rejuvenation import build_rejuvenation_net
from repro.petri import NetBuilder, ServerSemantics
from repro.petri.pnml import from_pnml, to_pnml


class TestRoundTrip:
    def test_two_state_net(self, two_state_net):
        restored = from_pnml(to_pnml(two_state_net))
        assert set(restored.places) == set(two_state_net.places)
        assert set(restored.transitions) == set(two_state_net.transitions)
        assert restored.initial_marking() == restored.marking({"Up": 1})

    def test_round_trip_preserves_solution(self, two_state_net):
        original = solve_steady_state(two_state_net)
        restored = solve_steady_state(from_pnml(to_pnml(two_state_net)))
        up_original = original.probability(lambda m: m["Up"] == 1)
        up_restored = restored.probability(lambda m: m["Up"] == 1)
        assert np.isclose(up_original, up_restored)

    def test_perception_net_round_trip(self, four_version_parameters):
        net = build_no_rejuvenation_net(four_version_parameters)
        restored = from_pnml(to_pnml(net))
        original = solve_steady_state(net)
        again = solve_steady_state(restored)
        assert np.isclose(
            original.probability(lambda m: m["Pmh"] == 4),
            again.probability(lambda m: m["Pmh"] == 4),
        )

    def test_deterministic_and_immediate_round_trip(self):
        builder = NetBuilder("mixed")
        builder.place("A", tokens=1).place("B").place("C")
        builder.immediate("i", weight=2.5, priority=3, inputs={"A": 1}, outputs={"B": 1})
        builder.deterministic("d", delay=7.5, inputs={"B": 1}, outputs={"C": 1})
        builder.exponential("e", rate=0.25, inputs={"C": 1}, outputs={"A": 1})
        net = builder.build()
        restored = from_pnml(to_pnml(net))
        immediate = restored.transitions["i"]
        assert immediate.priority == 3
        assert immediate.weight_in(restored.initial_marking()) == 2.5
        assert restored.transitions["d"].delay == 7.5

    def test_server_semantics_round_trip(self):
        builder = NetBuilder("inf")
        builder.place("A", tokens=2).place("B")
        builder.exponential(
            "t", rate=1.5, server=ServerSemantics.INFINITE,
            inputs={"A": 1}, outputs={"B": 1},
        )
        builder.exponential("back", rate=1.0, inputs={"B": 1}, outputs={"A": 1})
        restored = from_pnml(to_pnml(builder.build()))
        assert restored.transitions["t"].server is ServerSemantics.INFINITE

    def test_multiplicity_round_trip(self):
        builder = NetBuilder("multi")
        builder.place("A", tokens=4).place("B")
        builder.exponential("t", rate=1.0, inputs={"A": 2}, outputs={"B": 2})
        builder.exponential("back", rate=1.0, inputs={"B": 2}, outputs={"A": 2})
        restored = from_pnml(to_pnml(builder.build()))
        after = restored.fire(
            restored.transitions["t"], restored.initial_marking()
        )
        assert after["A"] == 2 and after["B"] == 2

    def test_inhibitor_round_trip(self):
        builder = NetBuilder("inhibit")
        builder.place("A", tokens=1).place("Stop").place("B")
        builder.exponential(
            "t", rate=1.0, inputs={"A": 1}, outputs={"B": 1}, inhibitors={"Stop": 1}
        )
        builder.exponential("back", rate=1.0, inputs={"B": 1}, outputs={"A": 1})
        restored = from_pnml(to_pnml(builder.build()))
        blocked = restored.marking({"A": 1, "Stop": 1})
        assert not restored.is_enabled(restored.transitions["t"], blocked)


class TestRefusals:
    def test_marking_dependent_weights_refused(self, six_version_parameters):
        net = build_rejuvenation_net(six_version_parameters)
        with pytest.raises(UnsupportedModelError):
            to_pnml(net)

    def test_guards_refused(self):
        builder = NetBuilder("guarded")
        builder.place("A", tokens=1).place("B")
        builder.exponential(
            "t", rate=1.0, guard=lambda m: m["A"] > 0,
            inputs={"A": 1}, outputs={"B": 1},
        )
        builder.exponential("back", rate=1.0, inputs={"B": 1}, outputs={"A": 1})
        with pytest.raises(UnsupportedModelError, match="guard"):
            to_pnml(builder.build())


class TestParsingErrors:
    def test_invalid_xml(self):
        with pytest.raises(ModelDefinitionError, match="XML"):
            from_pnml("<pnml><net>")

    def test_missing_net(self):
        with pytest.raises(ModelDefinitionError, match="no <net>"):
            from_pnml("<pnml></pnml>")

    def test_arc_between_places_rejected(self):
        document = """<pnml><net id="x"><page id="p">
            <place id="A"/><place id="B"/>
            <transition id="t"><toolspecific tool="repro" version="1"
                kind="exponential" rate="1.0"/></transition>
            <arc id="a1" source="A" target="B"/>
        </page></net></pnml>"""
        with pytest.raises(ModelDefinitionError, match="place and a"):
            from_pnml(document)
