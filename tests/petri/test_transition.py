"""Tests for repro.petri.transition."""

import pytest

from repro.errors import ModelDefinitionError, ParameterError
from repro.petri.marking import Marking
from repro.petri.transition import (
    DeterministicTransition,
    ExponentialTransition,
    ImmediateTransition,
    ServerSemantics,
    as_marking_function,
)

INDEX = {"P": 0, "Q": 1}


def marking(p=0, q=0):
    return Marking.from_dict(INDEX, {"P": p, "Q": q})


class TestAsMarkingFunction:
    def test_wraps_constant(self):
        fn = as_marking_function("x", 2.5)
        assert fn(marking()) == 2.5

    def test_passes_callable(self):
        fn = as_marking_function("x", lambda m: m["P"] * 2.0)
        assert fn(marking(p=3)) == 6.0

    def test_rejects_non_numeric(self):
        with pytest.raises(ParameterError):
            as_marking_function("x", "nope")

    def test_require_positive_rejects_constant_zero(self):
        with pytest.raises(ParameterError, match="> 0"):
            as_marking_function("x", 0.0, require_positive=True)

    def test_require_positive_accepts_callable_unchecked(self):
        # callables cannot be vetted until evaluated against a marking
        fn = as_marking_function("x", lambda m: 0.0, require_positive=True)
        assert fn(marking()) == 0.0


class TestGuards:
    def test_no_guard_always_satisfied(self):
        transition = ExponentialTransition("t", rate=1.0)
        assert transition.guard_satisfied(marking())

    def test_guard_evaluated(self):
        transition = ExponentialTransition("t", rate=1.0, guard=lambda m: m["P"] > 0)
        assert not transition.guard_satisfied(marking(p=0))
        assert transition.guard_satisfied(marking(p=1))

    def test_non_callable_guard_rejected(self):
        with pytest.raises(ModelDefinitionError):
            ExponentialTransition("t", rate=1.0, guard=True)  # type: ignore[arg-type]

    def test_empty_name_rejected(self):
        with pytest.raises(ModelDefinitionError):
            ExponentialTransition("", rate=1.0)


class TestImmediate:
    def test_weight_constant(self):
        transition = ImmediateTransition("i", weight=3.0)
        assert transition.weight_in(marking()) == 3.0

    def test_weight_marking_dependent(self):
        transition = ImmediateTransition("i", weight=lambda m: m["P"] / 4.0)
        assert transition.weight_in(marking(p=2)) == 0.5

    def test_zero_constant_weight_rejected_at_construction(self):
        with pytest.raises(ParameterError, match="weight"):
            ImmediateTransition("i", weight=0.0)

    def test_negative_constant_weight_rejected_at_construction(self):
        with pytest.raises(ParameterError, match="weight"):
            ImmediateTransition("i", weight=-2.0)

    def test_zero_callable_weight_raises_when_evaluated(self):
        transition = ImmediateTransition("i", weight=lambda m: 0.0)
        with pytest.raises(ParameterError, match="weight"):
            transition.weight_in(marking())

    def test_negative_priority_rejected(self):
        with pytest.raises(ModelDefinitionError):
            ImmediateTransition("i", priority=-1)

    def test_is_not_timed(self):
        assert not ImmediateTransition("i").is_timed


class TestExponential:
    def test_single_server_rate_ignores_degree(self):
        transition = ExponentialTransition("t", rate=2.0)
        assert transition.rate_in(marking(), enabling_degree=5) == 2.0

    def test_infinite_server_scales_with_degree(self):
        transition = ExponentialTransition(
            "t", rate=2.0, server=ServerSemantics.INFINITE
        )
        assert transition.rate_in(marking(), enabling_degree=5) == 10.0

    def test_marking_dependent_rate(self):
        transition = ExponentialTransition("t", rate=lambda m: 1.0 / (1 + m["P"]))
        assert transition.rate_in(marking(p=1), enabling_degree=1) == 0.5

    def test_zero_constant_rate_rejected_at_construction(self):
        with pytest.raises(ParameterError, match="rate"):
            ExponentialTransition("t", rate=0.0)

    def test_negative_constant_rate_rejected_at_construction(self):
        with pytest.raises(ParameterError, match="rate"):
            ExponentialTransition("t", rate=-1.0)

    def test_non_positive_callable_rate_raises_when_evaluated(self):
        transition = ExponentialTransition("t", rate=lambda m: 0.0)
        with pytest.raises(ParameterError, match="rate"):
            transition.rate_in(marking(), enabling_degree=1)

    def test_invalid_server_value(self):
        with pytest.raises(ModelDefinitionError):
            ExponentialTransition("t", rate=1.0, server="single")  # type: ignore[arg-type]

    def test_is_timed(self):
        assert ExponentialTransition("t", rate=1.0).is_timed


class TestDeterministic:
    def test_stores_delay(self):
        assert DeterministicTransition("d", delay=2.5).delay == 2.5

    def test_rejects_zero_delay(self):
        with pytest.raises(ParameterError):
            DeterministicTransition("d", delay=0.0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ParameterError):
            DeterministicTransition("d", delay=-1.0)

    def test_rejects_non_numeric_delay(self):
        with pytest.raises(ParameterError):
            DeterministicTransition("d", delay="soon")  # type: ignore[arg-type]
