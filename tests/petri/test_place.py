"""Tests for repro.petri.place."""

import pytest

from repro.errors import ModelDefinitionError, ParameterError
from repro.petri.place import Place


class TestPlace:
    def test_defaults(self):
        place = Place("P")
        assert place.tokens == 0
        assert place.capacity is None

    def test_initial_tokens(self):
        assert Place("P", tokens=4).tokens == 4

    def test_rejects_empty_name(self):
        with pytest.raises(ModelDefinitionError):
            Place("")

    def test_rejects_non_string_name(self):
        with pytest.raises(ModelDefinitionError):
            Place(42)  # type: ignore[arg-type]

    def test_rejects_negative_tokens(self):
        with pytest.raises(ParameterError):
            Place("P", tokens=-1)

    def test_rejects_tokens_above_capacity(self):
        with pytest.raises(ModelDefinitionError, match="above its capacity"):
            Place("P", tokens=5, capacity=4)

    def test_capacity_equal_tokens_ok(self):
        assert Place("P", tokens=4, capacity=4).capacity == 4

    def test_label_not_part_of_equality(self):
        assert Place("P", label="a") == Place("P", label="b")

    def test_frozen(self):
        place = Place("P")
        with pytest.raises(AttributeError):
            place.tokens = 3  # type: ignore[misc]
