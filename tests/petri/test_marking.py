"""Tests for repro.petri.marking."""

import pytest

from repro.errors import ModelDefinitionError
from repro.petri.marking import Marking

INDEX = {"A": 0, "B": 1, "C": 2}


class TestConstruction:
    def test_from_dict_partial(self):
        marking = Marking.from_dict(INDEX, {"B": 2})
        assert marking["A"] == 0
        assert marking["B"] == 2
        assert marking["C"] == 0

    def test_from_dict_unknown_place(self):
        with pytest.raises(ModelDefinitionError, match="unknown place"):
            Marking.from_dict(INDEX, {"Z": 1})

    def test_from_dict_negative(self):
        with pytest.raises(ModelDefinitionError, match="negative"):
            Marking.from_dict(INDEX, {"A": -1})

    def test_length_mismatch(self):
        with pytest.raises(ModelDefinitionError):
            Marking(INDEX, (1, 2))


class TestMappingInterface:
    def test_len_and_iter(self):
        marking = Marking.from_dict(INDEX, {"A": 1})
        assert len(marking) == 3
        assert list(marking) == ["A", "B", "C"]

    def test_get_with_default(self):
        marking = Marking.from_dict(INDEX, {})
        assert marking.get("A", 9) == 0
        assert marking.get("missing", 9) == 9

    def test_total_tokens(self):
        assert Marking.from_dict(INDEX, {"A": 1, "C": 3}).total_tokens() == 4


class TestIdentity:
    def test_equal_markings_hash_equal(self):
        a = Marking.from_dict(INDEX, {"A": 1})
        b = Marking.from_dict(INDEX, {"A": 1})
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_markings(self):
        a = Marking.from_dict(INDEX, {"A": 1})
        b = Marking.from_dict(INDEX, {"B": 1})
        assert a != b

    def test_usable_as_dict_key(self):
        a = Marking.from_dict(INDEX, {"A": 1})
        b = Marking.from_dict(INDEX, {"A": 1})
        assert {a: "x"}[b] == "x"


class TestAfter:
    def test_applies_delta_immutably(self):
        a = Marking.from_dict(INDEX, {"A": 2})
        b = a.after({"A": -1, "B": +1})
        assert a["A"] == 2 and a["B"] == 0
        assert b["A"] == 1 and b["B"] == 1

    def test_rejects_negative_result(self):
        a = Marking.from_dict(INDEX, {"A": 0})
        with pytest.raises(ModelDefinitionError, match="negative|to -1"):
            a.after({"A": -1})


class TestCompact:
    def test_shows_nonzero_only(self):
        marking = Marking.from_dict(INDEX, {"A": 2, "C": 1})
        assert marking.compact() == "A=2 C=1"

    def test_empty_marking(self):
        assert Marking.from_dict(INDEX, {}).compact() == "<empty>"
