"""Tests for repro.petri.net: enabling and firing semantics."""

import pytest

from repro.errors import ModelDefinitionError
from repro.petri import NetBuilder
from repro.petri.arc import ArcKind
from repro.petri.net import PetriNet
from repro.petri.place import Place
from repro.petri.transition import ExponentialTransition


def simple_net():
    builder = NetBuilder("simple")
    builder.place("A", tokens=2)
    builder.place("B")
    builder.exponential("t", rate=1.0, inputs={"A": 1}, outputs={"B": 1})
    return builder.build()


class TestConstruction:
    def test_duplicate_place_rejected(self):
        net = PetriNet("n")
        net.add_place(Place("A"))
        with pytest.raises(ModelDefinitionError, match="duplicate"):
            net.add_place(Place("A"))

    def test_duplicate_transition_rejected(self):
        net = PetriNet("n")
        net.add_transition(ExponentialTransition("t", rate=1.0))
        with pytest.raises(ModelDefinitionError, match="duplicate"):
            net.add_transition(ExponentialTransition("t", rate=2.0))

    def test_place_transition_namespace_shared(self):
        net = PetriNet("n")
        net.add_place(Place("X"))
        with pytest.raises(ModelDefinitionError, match="already used"):
            net.add_transition(ExponentialTransition("X", rate=1.0))

    def test_arc_to_unknown_place_rejected(self):
        net = PetriNet("n")
        net.add_transition(ExponentialTransition("t", rate=1.0))
        with pytest.raises(ModelDefinitionError, match="unknown place"):
            net.add_arc("missing", "t", ArcKind.INPUT)

    def test_arc_to_unknown_transition_rejected(self):
        net = PetriNet("n")
        net.add_place(Place("A"))
        with pytest.raises(ModelDefinitionError, match="unknown transition"):
            net.add_arc("A", "missing", ArcKind.INPUT)

    def test_validate_rejects_unconstrained_transition(self):
        net = PetriNet("n")
        net.add_place(Place("A"))
        net.add_transition(ExponentialTransition("t", rate=1.0))
        net.add_arc("A", "t", ArcKind.OUTPUT)
        with pytest.raises(ModelDefinitionError, match="unconditionally"):
            net.validate()

    def test_validate_rejects_empty_net(self):
        with pytest.raises(ModelDefinitionError):
            PetriNet("n").validate()

    def test_guard_only_transition_passes_validation(self):
        builder = NetBuilder("n")
        builder.place("A")
        builder.exponential("t", rate=1.0, guard=lambda m: m["A"] > 0, outputs={"A": 1})
        builder.build()  # must not raise


class TestEnabling:
    def test_enabled_with_sufficient_tokens(self):
        net = simple_net()
        marking = net.initial_marking()
        assert net.is_enabled(net.transitions["t"], marking)

    def test_enabling_degree_counts_batches(self):
        net = simple_net()
        marking = net.initial_marking()
        assert net.enabling_degree(net.transitions["t"], marking) == 2

    def test_disabled_without_tokens(self):
        net = simple_net()
        empty = net.marking({"A": 0})
        assert not net.is_enabled(net.transitions["t"], empty)

    def test_multiplicity_respected(self):
        builder = NetBuilder("n")
        builder.place("A", tokens=3)
        builder.place("B")
        builder.exponential("t", rate=1.0, inputs={"A": 2}, outputs={"B": 1})
        net = builder.build()
        assert net.enabling_degree(net.transitions["t"], net.initial_marking()) == 1
        assert not net.is_enabled(net.transitions["t"], net.marking({"A": 1}))

    def test_inhibitor_disables_at_threshold(self):
        builder = NetBuilder("n")
        builder.place("A", tokens=1)
        builder.place("Stop", tokens=0)
        builder.place("B")
        builder.exponential(
            "t", rate=1.0, inputs={"A": 1}, outputs={"B": 1}, inhibitors={"Stop": 1}
        )
        net = builder.build()
        assert net.is_enabled(net.transitions["t"], net.initial_marking())
        blocked = net.marking({"A": 1, "Stop": 1})
        assert not net.is_enabled(net.transitions["t"], blocked)

    def test_guard_disables(self):
        builder = NetBuilder("n")
        builder.place("A", tokens=1)
        builder.place("B")
        builder.exponential(
            "t", rate=1.0, guard=lambda m: m["B"] > 0, inputs={"A": 1}, outputs={"B": 1}
        )
        net = builder.build()
        assert not net.is_enabled(net.transitions["t"], net.initial_marking())

    def test_capacity_blocks_firing(self):
        builder = NetBuilder("n")
        builder.place("A", tokens=1)
        builder.place("B", tokens=1, capacity=1)
        builder.exponential("t", rate=1.0, inputs={"A": 1}, outputs={"B": 1})
        net = builder.build()
        assert not net.is_enabled(net.transitions["t"], net.initial_marking())

    def test_zero_multiplicity_input_does_not_block(self):
        builder = NetBuilder("n")
        builder.place("A", tokens=0)
        builder.place("B", tokens=1)
        builder.exponential(
            "t",
            rate=1.0,
            inputs={"A": lambda m: m["A"], "B": 1},
            outputs={"A": 1},
        )
        net = builder.build()
        # A-arc multiplicity evaluates to 0, so only B constrains enabling
        assert net.is_enabled(net.transitions["t"], net.initial_marking())


class TestFiring:
    def test_fire_moves_tokens(self):
        net = simple_net()
        after = net.fire(net.transitions["t"], net.initial_marking())
        assert after["A"] == 1
        assert after["B"] == 1

    def test_fire_disabled_raises(self):
        net = simple_net()
        with pytest.raises(ModelDefinitionError, match="not enabled"):
            net.fire(net.transitions["t"], net.marking({"A": 0}))

    def test_fire_is_pure(self):
        net = simple_net()
        marking = net.initial_marking()
        net.fire(net.transitions["t"], marking)
        assert marking["A"] == 2

    def test_self_loop_arc(self):
        builder = NetBuilder("n")
        builder.place("A", tokens=1)
        builder.place("B")
        builder.exponential(
            "t", rate=1.0, inputs={"A": 1}, outputs={"A": 1, "B": 1}
        )
        net = builder.build()
        after = net.fire(net.transitions["t"], net.initial_marking())
        assert after["A"] == 1
        assert after["B"] == 1

    def test_batch_arc_multiplicities_evaluated_on_source_marking(self):
        builder = NetBuilder("n")
        builder.place("A", tokens=3)
        builder.place("B")
        builder.exponential(
            "t",
            rate=1.0,
            inputs={"A": lambda m: m["A"]},
            outputs={"B": lambda m: m["A"]},
        )
        net = builder.build()
        after = net.fire(net.transitions["t"], net.initial_marking())
        assert after["A"] == 0
        assert after["B"] == 3


class TestAccessors:
    def test_kind_filters(self, clocked_net):
        assert [t.name for t in clocked_net.exponential_transitions()] == ["decay"]
        assert [t.name for t in clocked_net.deterministic_transitions()] == ["reset"]
        assert clocked_net.immediate_transitions() == []

    def test_initial_marking_matches_places(self, two_state_net):
        initial = two_state_net.initial_marking()
        assert initial["Up"] == 1
        assert initial["Down"] == 0
