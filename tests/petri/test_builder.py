"""Tests for the fluent NetBuilder."""

import pytest

from repro.errors import ModelDefinitionError, ParameterError
from repro.petri import NetBuilder, ServerSemantics
from repro.petri.transition import (
    DeterministicTransition,
    ExponentialTransition,
    ImmediateTransition,
)


class TestNetBuilder:
    def test_chaining(self):
        net = (
            NetBuilder("n")
            .place("A", tokens=1)
            .place("B")
            .exponential("t", rate=1.0, inputs={"A": 1}, outputs={"B": 1})
            .build()
        )
        assert set(net.places) == {"A", "B"}

    def test_all_transition_kinds(self):
        builder = NetBuilder("n")
        builder.place("A", tokens=1).place("B").place("C")
        builder.immediate("i", inputs={"A": 1}, outputs={"B": 1})
        builder.exponential("e", rate=1.0, inputs={"B": 1}, outputs={"C": 1})
        builder.deterministic("d", delay=5.0, inputs={"C": 1}, outputs={"A": 1})
        net = builder.build()
        assert isinstance(net.transitions["i"], ImmediateTransition)
        assert isinstance(net.transitions["e"], ExponentialTransition)
        assert isinstance(net.transitions["d"], DeterministicTransition)

    def test_inhibitor_wiring(self):
        builder = NetBuilder("n")
        builder.place("A", tokens=1).place("Stop").place("B")
        builder.exponential(
            "t", rate=1.0, inputs={"A": 1}, outputs={"B": 1}, inhibitors={"Stop": 1}
        )
        net = builder.build()
        assert len(list(net.inhibitor_arcs("t"))) == 1

    def test_server_semantics_passthrough(self):
        builder = NetBuilder("n")
        builder.place("A", tokens=2).place("B")
        builder.exponential(
            "t",
            rate=1.0,
            server=ServerSemantics.INFINITE,
            inputs={"A": 1},
            outputs={"B": 1},
        )
        net = builder.build()
        assert net.transitions["t"].server is ServerSemantics.INFINITE

    def test_build_validates(self):
        builder = NetBuilder("n")
        with pytest.raises(ModelDefinitionError):
            builder.build()

    def test_priority_and_weight_passthrough(self):
        builder = NetBuilder("n")
        builder.place("A", tokens=1).place("B")
        builder.immediate("i", weight=2.5, priority=7, inputs={"A": 1}, outputs={"B": 1})
        net = builder.build()
        transition = net.transitions["i"]
        assert transition.priority == 7
        assert transition.weight_in(net.initial_marking()) == 2.5


class TestSilentAcceptanceGap:
    """Regression tests for the silent-acceptance gap (ISSUE 3).

    Degenerate constant timings must be rejected when the transition is
    *declared*, not when the solver happens to evaluate them; only
    marking-dependent callables stay lazy (lint rules V002/V008 cover
    those).
    """

    def test_zero_rate_exponential_rejected(self):
        builder = NetBuilder("n").place("A", tokens=1).place("B")
        with pytest.raises(ParameterError, match="rate"):
            builder.exponential("t", rate=0.0, inputs={"A": 1}, outputs={"B": 1})

    def test_negative_rate_exponential_rejected(self):
        builder = NetBuilder("n").place("A", tokens=1).place("B")
        with pytest.raises(ParameterError, match="rate"):
            builder.exponential("t", rate=-0.5, inputs={"A": 1}, outputs={"B": 1})

    def test_zero_delay_deterministic_rejected(self):
        builder = NetBuilder("n").place("A", tokens=1).place("B")
        with pytest.raises(ParameterError, match="delay"):
            builder.deterministic("d", delay=0.0, inputs={"A": 1}, outputs={"B": 1})

    def test_zero_weight_immediate_rejected(self):
        builder = NetBuilder("n").place("A", tokens=1).place("B")
        with pytest.raises(ParameterError, match="weight"):
            builder.immediate("i", weight=0.0, inputs={"A": 1}, outputs={"B": 1})

    def test_positive_constants_still_accepted(self):
        builder = NetBuilder("n").place("A", tokens=1).place("B").place("C")
        builder.exponential("t", rate=0.25, inputs={"A": 1}, outputs={"B": 1})
        builder.deterministic("d", delay=1.5, inputs={"B": 1}, outputs={"C": 1})
        builder.immediate("i", weight=0.5, inputs={"C": 1}, outputs={"A": 1})
        builder.build()
