"""Tests for consecutive-error burst accounting in the runtime."""

import pytest

from repro.perception.parameters import PerceptionParameters
from repro.simulation import PerceptionRuntime


class TestErrorBursts:
    def test_no_errors_no_bursts(self):
        params = PerceptionParameters.four_version_defaults(p=0.0, p_prime=0.0)
        report = PerceptionRuntime(params, request_period=1.0, seed=0).run(2000.0)
        assert report.longest_error_burst == 0
        assert report.error_bursts == {}

    def test_burst_counts_sum_to_errors(self):
        params = PerceptionParameters.four_version_defaults()
        report = PerceptionRuntime(params, request_period=1.0, seed=1).run(50000.0)
        total_from_bursts = sum(
            length * count for length, count in report.error_bursts.items()
        )
        assert total_from_bursts == report.errors

    def test_longest_burst_is_histogram_max(self):
        params = PerceptionParameters.four_version_defaults()
        report = PerceptionRuntime(params, request_period=1.0, seed=2).run(50000.0)
        if report.error_bursts:
            assert report.longest_error_burst == max(report.error_bursts)

    def test_degraded_system_has_long_bursts(self):
        """With all modules compromised most of the time and p' close to 1,
        errors arrive in long runs: the burst structure captures the
        persistent-danger signature a plain error rate hides."""
        params = PerceptionParameters.four_version_defaults(p_prime=0.95)
        report = PerceptionRuntime(params, request_period=1.0, seed=3).run(50000.0)
        assert report.longest_error_burst > 10

    def test_rejuvenation_shortens_bursts(self):
        """Bursts persist until the state changes; rejuvenation cleanses
        compromised modules and should cut the worst-case run length."""
        four = PerceptionRuntime(
            PerceptionParameters.four_version_defaults(p_prime=0.9),
            request_period=1.0,
            seed=4,
        ).run(100000.0)
        six = PerceptionRuntime(
            PerceptionParameters.six_version_defaults(p_prime=0.9),
            request_period=1.0,
            seed=4,
        ).run(100000.0)
        assert six.longest_error_burst < four.longest_error_burst
