"""The statistical oracle: batch E[R] against the analytic Eq. 1 value.

Two flavours, both deterministic under fixed seeds:

* **Snapshot oracle** — groups are drawn i.i.d. from the analytic
  stationary census and answer a single request each, so the measured
  error count is a genuine Binomial sample and the Wilson interval is
  exact.  The analytic value must land inside a 99% interval at
  n = 262144 (half-width ≈ 2e-3 · σ-units per configuration).
* **Free-running oracle** — groups evolve over four full rejuvenation
  periods (2400 s).  Successive requests of one group are strongly
  autocorrelated (the fault process mixes on the MTTC timescale), so
  the interval is computed at the *effective* sample size — the number
  of independent trajectories — rather than the raw request count.

The analytic side uses the normalized-combinatorics reliability
function (:class:`GeneralizedReliability`), the exact expectation of
the runtime's sampling model, matching the precedent of
``tests/simulation/test_runtime.py``; the paper-verbatim appendix
formulas differ in their printed coefficients.  States below the voting
threshold contribute R = 1 under the safe-skip *measurement* (a lost
quorum produces no output, hence no error), so the contraction adjusts
those states accordingly.
"""

import numpy as np
import pytest

from repro.nversion.reliability import GeneralizedReliability
from repro.perception.evaluation import evaluate
from repro.simulation import BatchConfig, simulate_batch
from repro.verify.oracles import wilson_interval
from repro.verify.targets import experiment_targets

#: (experiment id, target name) pairs pinned by the oracle — three
#: registry experiments, six configurations.
ORACLE_TARGETS = [
    ("table2-defaults", "table2-defaults/4v"),
    ("table2-defaults", "table2-defaults/6v"),
    ("fig3", "fig3/6v"),
    ("scaling", "scaling/5v-no-rejuvenation"),
    ("scaling", "scaling/7v-rejuvenation"),
    ("scaling", "scaling/9v-f2-rejuvenation"),
]


def _target_parameters(experiment_id: str, name: str):
    for target in experiment_targets(experiment_id):
        if target.name == name:
            return target.parameters
    raise AssertionError(f"target {name!r} not in experiment {experiment_id!r}")


def safe_skip_expected_reliability(parameters) -> float:
    """Eq. 1 contraction matching the runtime's safe-skip measurement."""
    threshold = parameters.voting_scheme.threshold
    natural = GeneralizedReliability(
        n_modules=parameters.n_modules,
        threshold=threshold,
        p=parameters.p,
        p_prime=parameters.p_prime,
        alpha=parameters.alpha,
    )
    result = evaluate(parameters, reliability=natural)
    expected = 0.0
    for state, probability in result.state_probabilities.items():
        operational = state.healthy + state.compromised
        reliability = (
            1.0  # no quorum, no output, no error
            if operational < threshold
            else natural(state.healthy, state.compromised, state.unavailable)
        )
        expected += probability * reliability
    return expected


class TestSnapshotOracle:
    """i.i.d. stationary draws: the Wilson interval is exact."""

    @pytest.mark.parametrize("experiment_id,name", ORACLE_TARGETS)
    def test_empirical_inside_wilson_interval(self, experiment_id, name):
        parameters = _target_parameters(experiment_id, name)
        analytic = safe_skip_expected_reliability(parameters)
        config = BatchConfig(
            parameters=parameters,
            groups=262144,
            rounds=1,
            request_period=0.5,
            seed=1,
            chunk_size=65536,
        ).with_stationary_init()
        report = simulate_batch(config)
        successes = report.requests - report.errors
        low, high = wilson_interval(
            successes, report.requests, confidence=0.99
        )
        assert low <= analytic <= high, (
            f"{name}: analytic E[R]={analytic:.6f} outside "
            f"[{low:.6f}, {high:.6f}] (empirical "
            f"{successes / report.requests:.6f})"
        )

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_deterministic_across_jobs(self, jobs):
        parameters = _target_parameters("table2-defaults", "table2-defaults/6v")
        analytic = safe_skip_expected_reliability(parameters)
        config = BatchConfig(
            parameters=parameters,
            groups=262144,
            rounds=1,
            request_period=0.5,
            seed=1,
            chunk_size=65536,
        ).with_stationary_init()
        report = simulate_batch(config, jobs=jobs)
        # byte-identical at every worker count: the error count is a
        # pure function of the config
        assert report.errors == simulate_batch(config).errors
        successes = report.requests - report.errors
        low, high = wilson_interval(
            successes, report.requests, confidence=0.99
        )
        assert low <= analytic <= high


class TestFreeRunningOracle:
    """Dynamics-exercising runs, intervals at the effective sample size."""

    @pytest.mark.parametrize(
        "experiment_id,name",
        [
            ("table2-defaults", "table2-defaults/4v"),
            ("table2-defaults", "table2-defaults/6v"),
            ("scaling", "scaling/9v-f2-rejuvenation"),
        ],
    )
    def test_empirical_inside_effective_interval(self, experiment_id, name):
        parameters = _target_parameters(experiment_id, name)
        analytic = safe_skip_expected_reliability(parameters)
        config = BatchConfig(
            parameters=parameters,
            groups=1024,
            rounds=1200,  # 2400 s = four rejuvenation-clock periods
            request_period=2.0,
            seed=1,
            chunk_size=1024,
        ).with_stationary_init()
        report = simulate_batch(config)
        empirical = report.reliability_safe_skip
        # effective trials = independent trajectories; requests within
        # one group are autocorrelated on the MTTC timescale
        effective = config.groups
        low, high = wilson_interval(
            round(empirical * effective), effective, confidence=0.99
        )
        assert low <= analytic <= high, (
            f"{name}: analytic E[R]={analytic:.6f} outside "
            f"[{low:.6f}, {high:.6f}] (empirical {empirical:.6f})"
        )
