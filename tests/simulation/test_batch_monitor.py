"""The monitor bridge: batch streams feed the repro.monitor estimator.

The batch runtime folds per-round disagreement tallies into a
vectorized mirror of :class:`~repro.monitor.estimator.HealthEstimator`.
These tests pin that bridge down three ways: the vectorized filter
against the scalar filter *directly* (bitwise posterior equality under
a shared observation stream), the end-to-end ``monitor.*`` metric
surface between the batch and event-loop paths, and the configuration
validation/reporting surface.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.monitor.estimator import HealthEstimator
from repro.obs.metrics import registry_override
from repro.simulation import (
    BatchConfig,
    BatchMonitorConfig,
    simulate_batch,
    simulate_reference,
)
from repro.simulation.batch import BatchMonitor

MONITOR_COUNTERS = (
    "monitor.compromises",
    "monitor.flags",
    "monitor.false_alarms",
    "monitor.rejuvenations",
    "monitor.rejuvenations.false",
    "monitor.rounds",
    "monitor.errors",
    "monitor.estimator.updates",
)


class TestVectorizedFilterAgainstScalar:
    """BatchMonitor's filter is the scalar filter, run over arrays."""

    def test_posterior_bitwise_equal_under_shared_stream(
        self, six_version_parameters
    ):
        n = six_version_parameters.n_modules
        rng = np.random.default_rng(17)
        dt = 2.0
        with registry_override():
            batch = BatchMonitor(
                six_version_parameters, BatchMonitorConfig(), n_groups=1
            )
            scalar = HealthEstimator(six_version_parameters)
            was_up = np.ones(n, dtype=bool)
            for k in range(200):
                now = (k + 1) * dt
                participated = rng.random(n) < 0.9
                deviated = participated & (rng.random(n) < 0.2)
                batch.observe_round(
                    now,
                    participated[None, :],
                    deviated[None, :],
                    np.zeros(1, dtype=np.int8),
                )
                # mirror the availability sync the batch monitor applies
                for module in np.nonzero(was_up & ~participated)[0]:
                    scalar.observe_unavailable(int(module), now)
                for module in np.nonzero(~was_up & participated)[0]:
                    scalar.observe_return(int(module), now)
                was_up = participated.copy()
                for module in np.nonzero(participated)[0]:
                    scalar.update(int(module), bool(deviated[module]), now)
                posterior = batch.report().posterior
                for module in range(n):
                    expected = scalar.probability_compromised(module)
                    actual = posterior[0, module]
                    if participated[module]:
                        assert actual == expected, (k, module)
                    else:
                        assert expected is None and np.isnan(actual), (k, module)

    def test_unavailability_resets_belief(self, six_version_parameters):
        n = six_version_parameters.n_modules
        with registry_override():
            batch = BatchMonitor(
                six_version_parameters, BatchMonitorConfig(), n_groups=1
            )
            everyone = np.ones((1, n), dtype=bool)
            nobody = np.zeros((1, n), dtype=bool)
            outcome = np.zeros(1, dtype=np.int8)
            batch.observe_round(2.0, everyone, everyone, outcome)
            suspicious = batch.report().posterior[0, 0]
            assert suspicious > 0.0
            # module 0 goes down, then comes back: belief restarts at 0
            down = everyone.copy()
            down[0, 0] = False
            batch.observe_round(4.0, down, nobody, outcome)
            assert np.isnan(batch.report().posterior[0, 0])
            batch.observe_round(6.0, everyone, nobody, outcome)
            assert batch.report().posterior[0, 0] < suspicious


class TestMetricSurfaceParity:
    """monitor.* counters and histograms agree between the two paths."""

    @pytest.mark.parametrize("mode", ["observe", "targeted", "threshold"])
    def test_counters_and_disagreement_histogram(
        self, six_version_parameters, mode
    ):
        config = BatchConfig(
            parameters=six_version_parameters,
            groups=24,
            rounds=400,
            request_period=2.0,
            seed=23,
            chunk_size=8,
            monitor=BatchMonitorConfig(mode=mode),
        ).with_stationary_init()
        with registry_override() as batch_registry:
            batch = simulate_batch(config)
        with registry_override() as reference_registry:
            reference = simulate_reference(config)
        for name in MONITOR_COUNTERS:
            assert (
                batch_registry.counter(name).value
                == reference_registry.counter(name).value
            ), name
        batch_hist = batch_registry.histogram("monitor.disagreement")
        reference_hist = reference_registry.histogram("monitor.disagreement")
        assert batch_hist.count == reference_hist.count
        assert batch_hist.buckets == reference_hist.buckets
        # totals accumulate in different orders; equality is approximate
        assert batch_hist.total == pytest.approx(reference_hist.total)
        np.testing.assert_array_equal(
            batch.monitor.posterior, reference.monitor.posterior
        )
        assert batch.monitor.summary() == reference.monitor.summary()

    def test_summary_counts_follow_report(self, six_version_parameters):
        config = BatchConfig(
            parameters=six_version_parameters,
            groups=16,
            rounds=600,
            request_period=2.0,
            seed=31,
            chunk_size=16,
            monitor=BatchMonitorConfig(mode="targeted"),
        )
        with registry_override():
            report = simulate_batch(config)
        summary = report.monitor.summary()
        assert summary.compromises == report.monitor.compromises
        assert summary.triggers == report.monitor.triggers
        assert 0 <= report.monitor.detected <= report.monitor.compromises


class TestConfigurationSurface:
    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError, match="monitor mode"):
            BatchMonitorConfig(mode="psychic")

    def test_drive_modes_require_rejuvenation(self, four_version_parameters):
        with pytest.raises(SimulationError, match="rejuvenation disabled"):
            BatchConfig(
                parameters=four_version_parameters,
                groups=4,
                rounds=10,
                monitor=BatchMonitorConfig(mode="threshold"),
            )

    def test_observe_mode_never_drives(self, four_version_parameters):
        config = BatchConfig(
            parameters=four_version_parameters,
            groups=4,
            rounds=10,
            monitor=BatchMonitorConfig(mode="observe"),
        )
        assert not config.monitor.drives_clock
