"""Seed audit: one seed must pin down the entire trajectory.

Reproducibility is the backbone of the policy comparisons — the
adaptive policies are only comparable to the periodic baseline if the
fault history and request stream are literally the same.  These tests
lock down three layers:

* **replay** — the same seed replays byte-identically, with and without
  an attack campaign;
* **passivity** — attaching a passive monitor must not perturb the
  event or RNG streams (the ISSUE's trace-identity acceptance
  criterion);
* **provenance** — the seed is recorded on the report, the occupancy
  trace and the rendered occupancy comparison.
"""

import pytest

from repro.monitor import MonitorController, PeriodicPolicy
from repro.perception.parameters import PerceptionParameters
from repro.simulation.campaigns import AttackCampaign
from repro.simulation.runtime import PerceptionRuntime
from repro.simulation.trace import StateOccupancy, compare_with_analytic


def run_once(
    parameters,
    *,
    seed=42,
    monitored=False,
    campaign=None,
    duration=8000.0,
):
    monitor = (
        MonitorController(parameters, PeriodicPolicy()) if monitored else None
    )
    runtime = PerceptionRuntime(
        parameters,
        request_period=1.0,
        seed=seed,
        campaign=campaign,
        monitor=monitor,
    )
    return runtime.run(duration, collect_occupancy=True)


def trace_of(report):
    """Everything that should be pinned by the seed."""
    return (
        report.requests,
        report.correct,
        report.errors,
        report.inconclusive,
        report.error_bursts,
        report.occupancy.dwell,
    )


@pytest.fixture
def parameters():
    return PerceptionParameters.six_version_defaults()


class TestReplay:
    def test_same_seed_identical_trace(self, parameters):
        first = run_once(parameters, seed=42)
        second = run_once(parameters, seed=42)
        assert trace_of(first) == trace_of(second)

    def test_different_seed_diverges(self, parameters):
        assert trace_of(run_once(parameters, seed=1)) != trace_of(
            run_once(parameters, seed=2)
        )

    def test_campaign_replays_identically(self, parameters):
        campaign = AttackCampaign.periodic(
            period=2000.0, burst_duration=500.0, intensity=6.0, horizon=8000.0
        )
        first = run_once(parameters, seed=5, campaign=campaign)
        second = run_once(parameters, seed=5, campaign=campaign)
        assert trace_of(first) == trace_of(second)


class TestPassiveMonitorIdentity:
    def test_monitored_run_reproduces_bare_trajectory(self, parameters):
        """ISSUE acceptance criterion: with monitoring attached, the
        periodic policy reproduces the existing rejuvenator's
        trajectory exactly — same seed, identical traces."""
        bare = run_once(parameters, seed=42, monitored=False)
        monitored = run_once(parameters, seed=42, monitored=True)
        assert trace_of(bare) == trace_of(monitored)

    def test_identity_holds_under_attack(self, parameters):
        campaign = AttackCampaign.periodic(
            period=2000.0, burst_duration=500.0, intensity=6.0, horizon=8000.0
        )
        bare = run_once(parameters, seed=9, campaign=campaign)
        monitored = run_once(
            parameters, seed=9, campaign=campaign, monitored=True
        )
        assert trace_of(bare) == trace_of(monitored)


class TestSeedProvenance:
    def test_report_and_occupancy_carry_seed(self, parameters):
        report = run_once(parameters, seed=42, duration=200.0)
        assert report.seed == 42
        assert report.occupancy.seed == 42

    def test_unseeded_run_records_none(self, parameters):
        report = run_once(parameters, seed=None, duration=200.0)
        assert report.seed is None
        assert report.occupancy.seed is None

    def test_comparison_renders_seed(self, parameters):
        report = run_once(parameters, seed=42, duration=2000.0)
        comparison = compare_with_analytic(report.occupancy, parameters)
        assert comparison.seed == 42
        assert "seed: 42" in comparison.render()

    def test_unseeded_comparison_says_so(self, parameters):
        occupancy = StateOccupancy()
        from repro.perception.statemap import ModuleCounts

        occupancy.record(ModuleCounts(6, 0, 0), 100.0)
        comparison = compare_with_analytic(occupancy, parameters)
        assert "seed: unseeded" in comparison.render()
