"""Tests for the runtime voter."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.nversion.voting import VotingScheme
from repro.simulation.batch.voter import NO_OUTPUT, tally_rounds
from repro.simulation.voter import AgreementModel, VoteOutcome, Voter


def bft_voter(agreement=AgreementModel.WORST_CASE):
    return Voter(VotingScheme.bft(1), agreement=agreement)  # threshold 3 of 4


class TestTally:
    def test_counts_and_margin(self):
        tally = bft_voter().tally([7, 7, 2, 2, 2, None], ground_truth=7)
        assert tally.counts == {7: 2, 2: 3}
        assert tally.votes == 5
        assert tally.correct == 2
        assert tally.incorrect == 3
        assert tally.winner == 2
        assert tally.margin == 1

    def test_single_label_margin_is_count(self):
        tally = bft_voter().tally([7, 7, 7, None], ground_truth=7)
        assert tally.winner == 7
        assert tally.margin == 3

    def test_tie_breaks_towards_smaller_label(self):
        tally = bft_voter().tally([5, 5, 9, 9], ground_truth=9)
        assert tally.winner == 5
        assert tally.margin == 0

    def test_empty_round(self):
        tally = bft_voter().tally([None, None, None, None], ground_truth=3)
        assert tally.counts == {}
        assert tally.votes == tally.correct == tally.margin == 0
        assert tally.winner is None

    @pytest.mark.parametrize(
        "agreement", [AgreementModel.WORST_CASE, AgreementModel.PER_LABEL]
    )
    def test_tally_is_agreement_independent(self, agreement):
        """The tally is raw counts; only classify() depends on the model."""
        outputs = [1, 2, 3, 7]
        assert bft_voter(agreement).tally(outputs, 7) == bft_voter().tally(outputs, 7)

    @pytest.mark.parametrize(
        "agreement", [AgreementModel.WORST_CASE, AgreementModel.PER_LABEL]
    )
    def test_decide_equals_classify_of_tally(self, agreement):
        """decide() is exactly classify(tally()) for both agreement models."""
        voter = bft_voter(agreement)
        cases = [
            [7, 7, 7, 2],
            [1, 2, 3, 7],
            [2, 2, 2, 7],
            [7, 7, None, None],
            [None, None, None, None],
        ]
        for outputs in cases:
            tally = voter.tally(outputs, 7)
            assert voter.decide(outputs, 7) is voter.classify(tally)


class TestWorstCase:
    def test_correct(self):
        voter = bft_voter()
        assert voter.decide([7, 7, 7, 2], ground_truth=7) is VoteOutcome.CORRECT

    def test_error_pools_all_wrong_labels(self):
        voter = bft_voter()
        # three wrong outputs with different labels still count together
        assert voter.decide([1, 2, 3, 7], ground_truth=7) is VoteOutcome.ERROR

    def test_inconclusive_on_split(self):
        voter = bft_voter()
        assert voter.decide([7, 7, 1, 2], ground_truth=7) is VoteOutcome.INCONCLUSIVE

    def test_missing_outputs_reduce_votes(self):
        voter = bft_voter()
        assert (
            voter.decide([7, 7, None, None], ground_truth=7)
            is VoteOutcome.INCONCLUSIVE
        )

    def test_threshold_reached_with_missing(self):
        voter = bft_voter()
        assert voter.decide([7, 7, 7, None], ground_truth=7) is VoteOutcome.CORRECT

    def test_all_missing_inconclusive(self):
        voter = bft_voter()
        assert (
            voter.decide([None, None, None, None], ground_truth=7)
            is VoteOutcome.INCONCLUSIVE
        )


class TestPerLabel:
    def test_disagreeing_wrong_outputs_inconclusive(self):
        voter = bft_voter(AgreementModel.PER_LABEL)
        assert voter.decide([1, 2, 3, 7], ground_truth=7) is VoteOutcome.INCONCLUSIVE

    def test_agreeing_wrong_outputs_error(self):
        voter = bft_voter(AgreementModel.PER_LABEL)
        assert voter.decide([2, 2, 2, 7], ground_truth=7) is VoteOutcome.ERROR

    def test_per_label_never_more_errors_than_worst_case(self):
        worst = bft_voter()
        per_label = bft_voter(AgreementModel.PER_LABEL)
        cases = [
            [1, 2, 3, 7],
            [2, 2, 3, 7],
            [2, 2, 2, 7],
            [7, 7, 7, 7],
            [1, 1, None, 7],
        ]
        for outputs in cases:
            if per_label.decide(outputs, 7) is VoteOutcome.ERROR:
                assert worst.decide(outputs, 7) is VoteOutcome.ERROR


class TestRejuvenationScheme:
    def test_six_version_threshold_four(self):
        voter = Voter(VotingScheme.bft_with_rejuvenation(1, 1))
        outputs = [7, 7, 7, 7, 1, None]
        assert voter.decide(outputs, ground_truth=7) is VoteOutcome.CORRECT
        outputs = [7, 7, 7, 1, 1, None]
        assert voter.decide(outputs, ground_truth=7) is VoteOutcome.INCONCLUSIVE


class TestVoteCapacity:
    """N < 2f+r+1 slots can never reach the threshold: reject eagerly."""

    def test_tally_rejects_undersized_rounds(self):
        voter = bft_voter()  # threshold 3
        with pytest.raises(SimulationError) as excinfo:
            voter.tally([7, 7], ground_truth=7)
        message = str(excinfo.value)
        assert "2 module slot(s)" in message
        assert "threshold 3" in message
        # details are sorted so the error reads the same on every run
        assert message.index("scheme=") < message.index("slots=")
        assert message.index("slots=") < message.index("threshold=")
        assert "N >= 2f+r+1" in message

    def test_tally_accepts_exactly_threshold_slots(self):
        tally = bft_voter().tally([7, 7, 7], ground_truth=7)
        assert tally.winner == 7
        assert tally.correct == 3

    def test_missing_outputs_still_count_as_slots(self):
        """Capacity is about slots, not cast votes: a round where every
        module abstains is a valid (inconclusive) round."""
        tally = bft_voter().tally([None, None, None, None], ground_truth=7)
        assert tally.votes == 0

    def test_batch_tally_rejects_undersized_rounds(self):
        labels = np.array([[7, 7]])
        truth = np.array([7])
        with pytest.raises(SimulationError, match="voting threshold"):
            tally_rounds(labels, truth, 43, VotingScheme.bft(1))

    def test_batch_tally_accepts_exactly_threshold_slots(self):
        labels = np.array([[7, 7, 7], [7, 2, NO_OUTPUT]])
        truth = np.array([7, 7])
        tally = tally_rounds(labels, truth, 43, VotingScheme.bft(1))
        assert tally.correct.tolist() == [3, 1]
        assert tally.winner.tolist() == [7, 2]
