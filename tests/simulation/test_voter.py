"""Tests for the runtime voter."""

from repro.nversion.voting import VotingScheme
from repro.simulation.voter import AgreementModel, VoteOutcome, Voter


def bft_voter(agreement=AgreementModel.WORST_CASE):
    return Voter(VotingScheme.bft(1), agreement=agreement)  # threshold 3 of 4


class TestWorstCase:
    def test_correct(self):
        voter = bft_voter()
        assert voter.decide([7, 7, 7, 2], ground_truth=7) is VoteOutcome.CORRECT

    def test_error_pools_all_wrong_labels(self):
        voter = bft_voter()
        # three wrong outputs with different labels still count together
        assert voter.decide([1, 2, 3, 7], ground_truth=7) is VoteOutcome.ERROR

    def test_inconclusive_on_split(self):
        voter = bft_voter()
        assert voter.decide([7, 7, 1, 2], ground_truth=7) is VoteOutcome.INCONCLUSIVE

    def test_missing_outputs_reduce_votes(self):
        voter = bft_voter()
        assert (
            voter.decide([7, 7, None, None], ground_truth=7)
            is VoteOutcome.INCONCLUSIVE
        )

    def test_threshold_reached_with_missing(self):
        voter = bft_voter()
        assert voter.decide([7, 7, 7, None], ground_truth=7) is VoteOutcome.CORRECT

    def test_all_missing_inconclusive(self):
        voter = bft_voter()
        assert (
            voter.decide([None, None, None, None], ground_truth=7)
            is VoteOutcome.INCONCLUSIVE
        )


class TestPerLabel:
    def test_disagreeing_wrong_outputs_inconclusive(self):
        voter = bft_voter(AgreementModel.PER_LABEL)
        assert voter.decide([1, 2, 3, 7], ground_truth=7) is VoteOutcome.INCONCLUSIVE

    def test_agreeing_wrong_outputs_error(self):
        voter = bft_voter(AgreementModel.PER_LABEL)
        assert voter.decide([2, 2, 2, 7], ground_truth=7) is VoteOutcome.ERROR

    def test_per_label_never_more_errors_than_worst_case(self):
        worst = bft_voter()
        per_label = bft_voter(AgreementModel.PER_LABEL)
        cases = [
            [1, 2, 3, 7],
            [2, 2, 3, 7],
            [2, 2, 2, 7],
            [7, 7, 7, 7],
            [1, 1, None, 7],
        ]
        for outputs in cases:
            if per_label.decide(outputs, 7) is VoteOutcome.ERROR:
                assert worst.decide(outputs, 7) is VoteOutcome.ERROR


class TestRejuvenationScheme:
    def test_six_version_threshold_four(self):
        voter = Voter(VotingScheme.bft_with_rejuvenation(1, 1))
        outputs = [7, 7, 7, 7, 1, None]
        assert voter.decide(outputs, ground_truth=7) is VoteOutcome.CORRECT
        outputs = [7, 7, 7, 1, 1, None]
        assert voter.decide(outputs, ground_truth=7) is VoteOutcome.INCONCLUSIVE
