"""Tests for state-occupancy tracing."""

import pytest

from repro.errors import SimulationError
from repro.perception.parameters import PerceptionParameters
from repro.perception.statemap import ModuleCounts
from repro.simulation import PerceptionRuntime
from repro.simulation.modules import MLModule, module_census
from repro.simulation.trace import StateOccupancy, compare_with_analytic


class TestModuleCensus:
    def test_all_healthy(self):
        modules = [MLModule(i) for i in range(4)]
        assert module_census(modules) == ModuleCounts(4, 0, 0)

    def test_mixed_states(self):
        modules = [MLModule(i) for i in range(5)]
        modules[0].compromise()
        modules[1].compromise()
        modules[1].fail()
        modules[2].start_rejuvenation()
        assert module_census(modules) == ModuleCounts(2, 1, 2)


class TestStateOccupancy:
    def test_record_and_fractions(self):
        occupancy = StateOccupancy()
        occupancy.record(ModuleCounts(4, 0, 0), 3.0)
        occupancy.record(ModuleCounts(3, 1, 0), 1.0)
        occupancy.record(ModuleCounts(4, 0, 0), 1.0)
        fractions = occupancy.fractions()
        assert fractions[ModuleCounts(4, 0, 0)] == pytest.approx(0.8)
        assert fractions[ModuleCounts(3, 1, 0)] == pytest.approx(0.2)

    def test_zero_duration_ignored(self):
        occupancy = StateOccupancy()
        occupancy.record(ModuleCounts(4, 0, 0), 0.0)
        assert occupancy.fractions() == {}

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            StateOccupancy().record(ModuleCounts(4, 0, 0), -1.0)


class TestCompareWithAnalytic:
    def test_empty_occupancy_rejected(self):
        with pytest.raises(SimulationError):
            compare_with_analytic(
                StateOccupancy(), PerceptionParameters.four_version_defaults()
            )

    def test_exact_match_zero_distance(self):
        """Feeding the analytic distribution back gives distance ~0."""
        from repro.perception.evaluation import evaluate

        parameters = PerceptionParameters.four_version_defaults()
        analytic = evaluate(parameters).state_probabilities
        occupancy = StateOccupancy()
        for state, probability in analytic.items():
            occupancy.record(state, probability * 1000.0)
        comparison = compare_with_analytic(occupancy, parameters)
        assert comparison.total_variation_distance < 1e-9

    def test_runtime_occupancy_close_to_analytic(self):
        parameters = PerceptionParameters.four_version_defaults()
        runtime = PerceptionRuntime(parameters, request_period=100.0, seed=6)
        report = runtime.run(1500000.0, warmup=2000.0, collect_occupancy=True)
        comparison = compare_with_analytic(report.occupancy, parameters)
        assert comparison.total_variation_distance < 0.05

    def test_render(self):
        parameters = PerceptionParameters.four_version_defaults()
        occupancy = StateOccupancy()
        occupancy.record(ModuleCounts(4, 0, 0), 10.0)
        text = compare_with_analytic(occupancy, parameters).render(limit=3)
        assert "total variation distance" in text
        assert "(4, 0, 0)" in text

    def test_occupancy_none_without_flag(self):
        parameters = PerceptionParameters.four_version_defaults()
        runtime = PerceptionRuntime(parameters, request_period=10.0, seed=1)
        report = runtime.run(1000.0)
        assert report.occupancy is None

    def test_occupancy_total_matches_duration(self):
        parameters = PerceptionParameters.four_version_defaults()
        runtime = PerceptionRuntime(parameters, request_period=10.0, seed=2)
        report = runtime.run(5000.0, warmup=100.0, collect_occupancy=True)
        assert report.occupancy.total == pytest.approx(5000.0, rel=0.01)
