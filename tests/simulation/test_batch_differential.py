"""The batch-vs-event-loop differential harness.

:func:`repro.simulation.batch.simulate_batch` and
:func:`repro.simulation.batch.simulate_reference` interpret the same
seed schedule — the first with numpy array phases, the second element
by element through the trusted scalar components (``MLModule``,
``Voter``, ``HealthEstimator``, ``MonitorController``).  Equivalence
here is *exact*: identical per-round vote outcomes, identical
per-group failure counts, identical rejuvenation firings (round, group,
module), identical ground-truth transition tallies, and bitwise-equal
monitor posteriors for every configuration family the runtime accepts.

Fixed Fig. 2 configurations pin the paper's two instances plus the
monitor modes, attack campaigns, and stationary initialisation;
Hypothesis then widens the net over random (N, f, r, p, p') families.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitor.estimator import healthy_deviation_probability
from repro.obs.metrics import registry_override
from repro.perception.parameters import PerceptionParameters
from repro.simulation import (
    AttackCampaign,
    BatchConfig,
    BatchMonitorConfig,
    simulate_batch,
    simulate_reference,
)

#: Monitor counters that must agree exactly between the two runtimes.
MONITOR_COUNTERS = (
    "monitor.compromises",
    "monitor.flags",
    "monitor.false_alarms",
    "monitor.rejuvenations",
    "monitor.rejuvenations.false",
    "monitor.rounds",
    "monitor.errors",
    "monitor.estimator.updates",
)


def assert_equivalent(config: BatchConfig, *, jobs: int = 1) -> None:
    """Run both runtimes over ``config`` and require exact agreement."""
    with registry_override() as batch_registry:
        batch = simulate_batch(config, jobs=jobs)
    with registry_override() as reference_registry:
        reference = simulate_reference(config)

    assert batch.outcomes is not None and reference.outcomes is not None
    np.testing.assert_array_equal(batch.outcomes, reference.outcomes)
    np.testing.assert_array_equal(
        batch.per_group_correct, reference.per_group_correct
    )
    np.testing.assert_array_equal(
        batch.per_group_errors, reference.per_group_errors
    )
    np.testing.assert_array_equal(
        batch.per_group_inconclusive, reference.per_group_inconclusive
    )
    assert set(batch.transitions) == set(reference.transitions)
    for kind in batch.transitions:
        np.testing.assert_array_equal(
            batch.transitions[kind], reference.transitions[kind]
        )
    assert batch.rejuvenations == reference.rejuvenations
    assert (batch.requests, batch.correct, batch.errors, batch.inconclusive) == (
        reference.requests,
        reference.correct,
        reference.errors,
        reference.inconclusive,
    )

    if config.monitor is not None:
        assert batch.monitor is not None and reference.monitor is not None
        # posterior equality is bitwise, not approximate: both paths
        # must run the exact same float operations in the same order
        np.testing.assert_array_equal(
            batch.monitor.posterior, reference.monitor.posterior
        )
        np.testing.assert_array_equal(
            batch.monitor.available, reference.monitor.available
        )
        np.testing.assert_array_equal(
            batch.monitor.flagged, reference.monitor.flagged
        )
        assert batch.monitor.latency_sum == reference.monitor.latency_sum
        assert batch.monitor.latency_max == reference.monitor.latency_max
        for name in MONITOR_COUNTERS:
            assert (
                batch_registry.counter(name).value
                == reference_registry.counter(name).value
            ), name


def _config(parameters, **overrides) -> BatchConfig:
    base = dict(
        parameters=parameters,
        groups=24,
        rounds=80,
        request_period=2.0,
        seed=5,
        chunk_size=8,
        record_outcomes=True,
        record_rejuvenations=True,
    )
    base.update(overrides)
    return BatchConfig(**base)


class TestFigureTwoConfigurations:
    """The paper's two instances, with and without extras."""

    def test_four_version_no_rejuvenation(self, four_version_parameters):
        assert_equivalent(_config(four_version_parameters, rounds=120))

    def test_six_version_rejuvenation(self, six_version_parameters):
        # 80 rounds x 2 s crosses no clock tick; 400 x 2 s crosses one
        assert_equivalent(_config(six_version_parameters, rounds=400))

    def test_stationary_initialisation(self, six_version_parameters):
        assert_equivalent(
            _config(six_version_parameters, seed=9).with_stationary_init()
        )

    def test_attack_campaign(self, six_version_parameters):
        campaign = AttackCampaign.periodic(
            period=100.0,
            burst_duration=30.0,
            intensity=8.0,
            horizon=800.0,
        )
        assert_equivalent(
            _config(six_version_parameters, rounds=400, campaign=campaign)
        )

    def test_warmup_rounds_measured_window(self, four_version_parameters):
        assert_equivalent(
            _config(four_version_parameters, rounds=120, warmup_rounds=40)
        )


class TestMonitorModes:
    """Every monitor mode, including the clock-driving ones."""

    @pytest.mark.parametrize("mode", ["observe", "targeted", "threshold"])
    def test_mode_agrees(self, six_version_parameters, mode):
        assert_equivalent(
            _config(
                six_version_parameters,
                rounds=400,
                monitor=BatchMonitorConfig(mode=mode),
            )
        )

    def test_threshold_with_campaign_and_stationary_init(
        self, six_version_parameters
    ):
        campaign = AttackCampaign.periodic(
            period=200.0,
            burst_duration=60.0,
            intensity=8.0,
            horizon=800.0,
        )
        config = _config(
            six_version_parameters,
            rounds=400,
            seed=13,
            campaign=campaign,
            monitor=BatchMonitorConfig(mode="threshold", bound=0.9),
        ).with_stationary_init()
        assert_equivalent(config)


class TestWorkerInvariance:
    """jobs moves chunks across processes without changing anything."""

    def test_jobs_four_agrees_with_reference(self, six_version_parameters):
        assert_equivalent(
            _config(
                six_version_parameters,
                groups=32,
                rounds=400,
                monitor=BatchMonitorConfig(mode="threshold"),
            ),
            jobs=4,
        )

    def test_jobs_one_and_four_identical(self, six_version_parameters):
        config = _config(
            six_version_parameters,
            groups=32,
            rounds=400,
            monitor=BatchMonitorConfig(mode="targeted"),
        )
        with registry_override() as first_registry:
            first = simulate_batch(config, jobs=1)
        with registry_override() as second_registry:
            second = simulate_batch(config, jobs=4)
        np.testing.assert_array_equal(first.outcomes, second.outcomes)
        assert first.rejuvenations == second.rejuvenations
        np.testing.assert_array_equal(
            first.monitor.posterior, second.monitor.posterior
        )
        for name in MONITOR_COUNTERS:
            assert (
                first_registry.counter(name).value
                == second_registry.counter(name).value
            ), name
        first_hist = first_registry.histogram("monitor.disagreement")
        second_hist = second_registry.histogram("monitor.disagreement")
        assert first_hist.count == second_hist.count
        assert first_hist.buckets == second_hist.buckets


def _family_parameters(draw) -> PerceptionParameters:
    f = draw(st.integers(min_value=1, max_value=2))
    r = draw(st.integers(min_value=1, max_value=3))
    rejuvenation = draw(st.booleans())
    minimum = 3 * f + 1 + (2 * r if rejuvenation else 0)
    n_modules = minimum + draw(st.integers(min_value=0, max_value=2))
    return PerceptionParameters(
        n_modules=n_modules,
        f=f,
        r=r,
        rejuvenation=rejuvenation,
        alpha=draw(
            st.floats(min_value=0.05, max_value=0.95, allow_nan=False)
        ),
        p=draw(st.floats(min_value=0.01, max_value=0.4, allow_nan=False)),
        p_prime=draw(
            st.floats(min_value=0.05, max_value=0.95, allow_nan=False)
        ),
        mttc=draw(st.floats(min_value=50.0, max_value=4000.0)),
        mttf=draw(st.floats(min_value=50.0, max_value=4000.0)),
        mttr=draw(st.floats(min_value=1.0, max_value=20.0)),
        rejuvenation_time_per_module=draw(
            st.floats(min_value=1.0, max_value=10.0)
        ),
        rejuvenation_interval=600.0,
    )


class TestHypothesisFamilies:
    """Random (N, f, r, p, p') families stay equivalent."""

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_random_family_agrees(self, data):
        parameters = _family_parameters(data.draw)
        monitor = data.draw(
            st.sampled_from([None, "observe", "targeted", "threshold"])
        )
        if monitor is not None and monitor != "observe":
            if not parameters.rejuvenation:
                monitor = "observe"
        # the estimator needs separated deviation likelihoods
        if (
            monitor is not None
            and parameters.p_prime
            <= healthy_deviation_probability(parameters)
        ):
            monitor = None
        config = _config(
            parameters,
            groups=12,
            rounds=60,
            seed=data.draw(st.integers(min_value=0, max_value=2**16)),
            chunk_size=5,
            monitor=(
                BatchMonitorConfig(mode=monitor) if monitor is not None else None
            ),
        )
        assert_equivalent(config)
