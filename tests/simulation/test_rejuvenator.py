"""Tests for the rejuvenation manager."""

import numpy as np

from repro.simulation.modules import MLModule, ModuleState
from repro.simulation.rejuvenator import Rejuvenator


def make(interval=600.0, r=1, time_per_module=3.0):
    return Rejuvenator(interval=interval, r=r, time_per_module=time_per_module)


def healthy_pool(n=6):
    return [MLModule(i) for i in range(n)]


class TestClock:
    def test_next_tick_after_zero(self):
        assert make().next_tick_after(0.0) == 600.0

    def test_next_tick_strictly_after(self):
        assert make().next_tick_after(600.0) == 1200.0

    def test_next_tick_mid_interval(self):
        assert make().next_tick_after(700.0) == 1200.0


class TestOnTick:
    def test_selects_one_module(self):
        rejuvenator = make()
        modules = healthy_pool()
        started = rejuvenator.on_tick(modules, np.random.default_rng(0))
        assert len(started) == 1
        assert started[0].state is ModuleState.REJUVENATING

    def test_blocked_by_ongoing_rejuvenation(self):
        rejuvenator = make()
        modules = healthy_pool()
        rejuvenator.on_tick(modules, np.random.default_rng(0))
        started = rejuvenator.on_tick(modules, np.random.default_rng(1))
        assert started == []

    def test_blocked_by_failed_module_then_deferred(self):
        rejuvenator = make()
        modules = healthy_pool()
        modules[0].compromise()
        modules[0].fail()
        started = rejuvenator.on_tick(modules, np.random.default_rng(0))
        assert started == []
        assert rejuvenator.pending_selections == 1
        # repair completes; pending selection applies
        modules[0].repair()
        started = rejuvenator.apply_pending(modules, np.random.default_rng(1))
        assert len(started) == 1

    def test_r2_selects_two(self):
        rejuvenator = make(r=2)
        modules = healthy_pool(9)
        started = rejuvenator.on_tick(modules, np.random.default_rng(0))
        assert len(started) == 2

    def test_selection_uniform_over_operational(self):
        """Compromised modules are picked proportionally to their count."""
        rng = np.random.default_rng(42)
        picks_compromised = 0
        trials = 400
        for _ in range(trials):
            rejuvenator = make()
            modules = healthy_pool(6)
            for module in modules[:2]:
                module.compromise()
            (started,) = rejuvenator.on_tick(modules, rng)
            if started.module_id < 2:
                picks_compromised += 1
        # expected fraction 2/6
        assert abs(picks_compromised / trials - 1 / 3) < 0.08


class TestCompletionDelay:
    def test_mean_scales_with_batch(self):
        rejuvenator = make(time_per_module=3.0)
        rng = np.random.default_rng(0)
        ones = [rejuvenator.completion_delay(1, rng) for _ in range(4000)]
        twos = [rejuvenator.completion_delay(2, rng) for _ in range(4000)]
        assert np.isclose(np.mean(ones), 3.0, rtol=0.1)
        assert np.isclose(np.mean(twos), 6.0, rtol=0.1)
