"""Tests for the fault injector."""

import numpy as np
import pytest

from repro.simulation.faults import FaultInjector, FaultSemantics
from repro.simulation.modules import MLModule, ModuleState


def make_injector(semantics=FaultSemantics.CHANNEL):
    return FaultInjector(lambda_c=0.1, lambda_f=0.05, mu=1.0, semantics=semantics)


def pool(healthy=2, compromised=1, failed=1):
    modules = []
    for _ in range(healthy):
        modules.append(MLModule(len(modules)))
    for _ in range(compromised):
        module = MLModule(len(modules))
        module.compromise()
        modules.append(module)
    for _ in range(failed):
        module = MLModule(len(modules))
        module.compromise()
        module.fail()
        modules.append(module)
    return modules


class TestRates:
    def test_channel_semantics_flat(self):
        injector = make_injector()
        rates = injector._effective_rates(pool(healthy=3))
        assert rates["compromise"] == 0.1

    def test_per_module_semantics_scales(self):
        injector = make_injector(FaultSemantics.PER_MODULE)
        rates = injector._effective_rates(pool(healthy=3))
        assert np.isclose(rates["compromise"], 0.3)

    def test_no_eligible_modules_zero_rate(self):
        injector = make_injector()
        healthy_only = pool(healthy=2, compromised=0, failed=0)
        rates = injector._effective_rates(healthy_only)
        assert rates["fail"] == 0.0
        assert rates["repair"] == 0.0


class TestNextEvent:
    def test_returns_none_when_nothing_possible(self):
        injector = make_injector()
        module = MLModule(0)
        module.compromise()
        module.fail()
        # only repair possible; but a pool of only-rejuvenating modules -> None
        rejuvenating = MLModule(1)
        rejuvenating.start_rejuvenation()
        assert injector.next_event([rejuvenating], np.random.default_rng(0)) is None

    def test_event_kinds_distributed_by_rate(self):
        injector = FaultInjector(lambda_c=1.0, lambda_f=1.0, mu=98.0)
        rng = np.random.default_rng(0)
        kinds = [injector.next_event(pool(), rng)[1] for _ in range(500)]
        assert kinds.count("repair") > 400

    def test_delays_are_exponential_scale(self):
        injector = FaultInjector(lambda_c=10.0, lambda_f=10.0, mu=10.0)
        rng = np.random.default_rng(1)
        delays = [injector.next_event(pool(), rng)[0] for _ in range(2000)]
        assert np.isclose(np.mean(delays), 1 / 30.0, rtol=0.1)


class TestApply:
    def test_apply_compromise(self):
        injector = make_injector()
        modules = pool(healthy=2, compromised=0, failed=0)
        changed = injector.apply("compromise", modules, np.random.default_rng(0))
        assert changed.state is ModuleState.COMPROMISED

    def test_apply_repair(self):
        injector = make_injector()
        modules = pool(healthy=0, compromised=0, failed=1)
        changed = injector.apply("repair", modules, np.random.default_rng(0))
        assert changed.state is ModuleState.HEALTHY

    def test_apply_without_eligible_raises(self):
        injector = make_injector()
        with pytest.raises(ValueError, match="eligible"):
            injector.apply("repair", pool(failed=0), np.random.default_rng(0))
