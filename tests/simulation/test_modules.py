"""Tests for the ML module state machine."""

import pytest

from repro.simulation.modules import MLModule, ModuleState


class TestLifecycle:
    def test_starts_healthy(self):
        assert MLModule(0).state is ModuleState.HEALTHY

    def test_full_fault_cycle(self):
        module = MLModule(0)
        module.compromise()
        assert module.state is ModuleState.COMPROMISED
        module.fail()
        assert module.state is ModuleState.FAILED
        module.repair()
        assert module.state is ModuleState.HEALTHY
        assert module.transitions == 3

    def test_rejuvenation_from_healthy(self):
        module = MLModule(0)
        module.start_rejuvenation()
        assert module.state is ModuleState.REJUVENATING
        module.finish_rejuvenation()
        assert module.state is ModuleState.HEALTHY

    def test_rejuvenation_from_compromised(self):
        module = MLModule(0)
        module.compromise()
        module.start_rejuvenation()
        module.finish_rejuvenation()
        assert module.state is ModuleState.HEALTHY


class TestInvalidTransitions:
    def test_cannot_fail_while_healthy(self):
        with pytest.raises(ValueError, match="expected compromised"):
            MLModule(0).fail()

    def test_cannot_repair_operational(self):
        with pytest.raises(ValueError):
            MLModule(0).repair()

    def test_cannot_rejuvenate_failed(self):
        module = MLModule(0)
        module.compromise()
        module.fail()
        with pytest.raises(ValueError, match="cannot rejuvenate"):
            module.start_rejuvenation()

    def test_cannot_compromise_twice(self):
        module = MLModule(0)
        module.compromise()
        with pytest.raises(ValueError):
            module.compromise()


class TestOperationalFlag:
    def test_operational_states(self):
        module = MLModule(0)
        assert module.is_operational
        module.compromise()
        assert module.is_operational
        module.fail()
        assert not module.is_operational
