"""Tests for attack campaigns (time-varying compromise rates)."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.perception.parameters import PerceptionParameters
from repro.simulation import AttackCampaign, AttackWave, PerceptionRuntime


class TestAttackWave:
    def test_active_window_half_open(self):
        wave = AttackWave(start=10.0, end=20.0, intensity=5.0)
        assert wave.active_at(10.0)
        assert wave.active_at(19.999)
        assert not wave.active_at(20.0)
        assert not wave.active_at(9.999)

    def test_end_before_start_rejected(self):
        with pytest.raises(ParameterError):
            AttackWave(start=10.0, end=10.0, intensity=2.0)

    def test_non_positive_intensity_rejected(self):
        with pytest.raises(ParameterError):
            AttackWave(start=0.0, end=1.0, intensity=0.0)


class TestAttackCampaign:
    def test_multiplier_outside_waves_is_one(self):
        campaign = AttackCampaign(waves=(AttackWave(10.0, 20.0, 4.0),))
        assert campaign.multiplier_at(5.0) == 1.0
        assert campaign.multiplier_at(15.0) == 4.0

    def test_overlapping_waves_multiply(self):
        campaign = AttackCampaign(
            waves=(AttackWave(0.0, 10.0, 2.0), AttackWave(5.0, 15.0, 3.0))
        )
        assert campaign.multiplier_at(7.0) == 6.0

    def test_boundaries_sorted_unique(self):
        campaign = AttackCampaign(
            waves=(AttackWave(0.0, 10.0, 2.0), AttackWave(10.0, 20.0, 3.0))
        )
        assert campaign.boundaries() == [0.0, 10.0, 20.0]

    def test_empty_campaign_rejected(self):
        with pytest.raises(ParameterError):
            AttackCampaign(waves=())

    def test_periodic_constructor(self):
        campaign = AttackCampaign.periodic(
            period=100.0, burst_duration=20.0, intensity=5.0, horizon=250.0
        )
        assert len(campaign.waves) == 3
        assert campaign.multiplier_at(10.0) == 5.0
        assert campaign.multiplier_at(50.0) == 1.0

    def test_burst_longer_than_period_rejected(self):
        with pytest.raises(ParameterError):
            AttackCampaign.periodic(
                period=10.0, burst_duration=20.0, intensity=2.0, horizon=100.0
            )

    def test_average_multiplier(self):
        campaign = AttackCampaign.periodic(
            period=100.0, burst_duration=20.0, intensity=6.0, horizon=1000.0
        )
        # 20% of the time at 6x, 80% at 1x -> mean 2.0
        assert np.isclose(campaign.average_multiplier(1000.0), 2.0)


class TestRuntimeUnderCampaign:
    def test_intense_campaign_degrades_reliability(self):
        params = PerceptionParameters.four_version_defaults()
        quiet = PerceptionRuntime(params, request_period=2.0, seed=5).run(
            150000.0, warmup=1000.0
        )
        campaign = AttackCampaign.periodic(
            period=2000.0, burst_duration=1000.0, intensity=20.0, horizon=160000.0
        )
        attacked = PerceptionRuntime(
            params, request_period=2.0, seed=5, campaign=campaign
        ).run(150000.0, warmup=1000.0)
        assert attacked.reliability_safe_skip < quiet.reliability_safe_skip

    def test_unit_intensity_campaign_is_neutral(self):
        """A campaign multiplying by 1.0 must not change the statistics
        beyond resampling noise."""
        params = PerceptionParameters.four_version_defaults()
        campaign = AttackCampaign(waves=(AttackWave(0.0, 1e9, 1.0),))
        plain = PerceptionRuntime(params, request_period=2.0, seed=6).run(100000.0)
        modulated = PerceptionRuntime(
            params, request_period=2.0, seed=6, campaign=campaign
        ).run(100000.0)
        assert abs(
            plain.reliability_safe_skip - modulated.reliability_safe_skip
        ) < 0.03

    def test_campaign_average_matches_constant_rate(self):
        """A bursty campaign and a constant rate with the same mean λc
        give comparable (not identical) long-run error rates."""
        params = PerceptionParameters.four_version_defaults()
        horizon = 200000.0
        campaign = AttackCampaign.periodic(
            period=1000.0, burst_duration=500.0, intensity=3.0,
            horizon=horizon * 1.1,
        )
        mean_multiplier = campaign.average_multiplier(horizon)
        constant = PerceptionRuntime(
            params.replace(mttc=params.mttc / mean_multiplier),
            request_period=10.0,
            seed=7,
        ).run(horizon, warmup=1000.0)
        bursty = PerceptionRuntime(
            params, request_period=10.0, seed=7, campaign=campaign
        ).run(horizon, warmup=1000.0)
        assert abs(
            constant.reliability_safe_skip - bursty.reliability_safe_skip
        ) < 0.06
