"""Batch runtime surface: validation, determinism, accounting, events."""

import dataclasses

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.obs.events import event_stream
from repro.obs.metrics import registry_override
from repro.simulation import (
    BatchConfig,
    BatchMonitorConfig,
    simulate_batch,
)
from repro.simulation.batch import SeedSchedule, stationary_census_table
from repro.simulation.faults import FaultSemantics


def _config(parameters, **overrides) -> BatchConfig:
    base = dict(
        parameters=parameters,
        groups=16,
        rounds=50,
        request_period=2.0,
        seed=3,
        chunk_size=8,
    )
    base.update(overrides)
    return BatchConfig(**base)


class TestValidation:
    @pytest.mark.parametrize(
        "overrides,match",
        [
            (dict(groups=0), "groups"),
            (dict(rounds=0), "rounds"),
            (dict(warmup_rounds=50), "warmup_rounds"),
            (dict(warmup_rounds=-1), "warmup_rounds"),
            (dict(chunk_size=0), "chunk_size"),
            (dict(n_labels=1), "n_labels"),
            (dict(request_period=0.0), "request_period"),
            (dict(seed=-1), "seed"),
            (
                dict(fault_semantics=FaultSemantics.PER_MODULE),
                "CHANNEL",
            ),
        ],
    )
    def test_rejected_configs(self, four_version_parameters, overrides, match):
        with pytest.raises(SimulationError, match=match):
            _config(four_version_parameters, **overrides)

    def test_clock_must_land_on_round_grid(self, six_version_parameters):
        with pytest.raises(SimulationError, match="integer multiple"):
            _config(six_version_parameters, request_period=7.0)

    def test_jobs_must_be_positive(self, four_version_parameters):
        with pytest.raises(SimulationError, match="jobs"):
            simulate_batch(_config(four_version_parameters), jobs=0)

    def test_seed_schedule_rejects_negative_seed(self):
        with pytest.raises(SimulationError, match="seed"):
            SeedSchedule(-1, 4)


class TestDeterminism:
    def test_same_config_same_trajectory(self, six_version_parameters):
        config = _config(
            six_version_parameters,
            record_outcomes=True,
            monitor=BatchMonitorConfig(mode="observe"),
        )
        with registry_override():
            first = simulate_batch(config)
        with registry_override():
            second = simulate_batch(config)
        np.testing.assert_array_equal(first.outcomes, second.outcomes)
        np.testing.assert_array_equal(
            first.monitor.posterior, second.monitor.posterior
        )

    def test_seed_changes_trajectory(self, four_version_parameters):
        with registry_override():
            a = simulate_batch(
                _config(four_version_parameters, rounds=200, seed=1)
            )
            b = simulate_batch(
                _config(four_version_parameters, rounds=200, seed=2)
            )
        assert not np.array_equal(a.per_group_errors, b.per_group_errors)


class TestAccounting:
    def test_outcomes_partition_requests(self, six_version_parameters):
        with registry_override():
            report = simulate_batch(_config(six_version_parameters))
        assert report.requests == 16 * 50
        assert (
            report.correct + report.errors + report.inconclusive
            == report.requests
        )
        assert 0.0 <= report.reliability_strict <= report.reliability_safe_skip <= 1.0
        assert report.throughput > 0

    def test_warmup_shrinks_measured_window(self, six_version_parameters):
        with registry_override():
            report = simulate_batch(
                _config(six_version_parameters, warmup_rounds=20)
            )
        assert report.requests == 16 * 30
        assert report.duration == pytest.approx(30 * 2.0)

    def test_recorded_outcome_matrix_shape(self, four_version_parameters):
        with registry_override():
            report = simulate_batch(
                _config(four_version_parameters, record_outcomes=True)
            )
        assert report.outcomes.shape == (50, 16)
        assert report.rejuvenations is None

    def test_requests_counter_counts_all_rounds(self, four_version_parameters):
        with registry_override() as registry:
            simulate_batch(_config(four_version_parameters, warmup_rounds=20))
        assert registry.counter("sim.batch.requests").value == 16 * 50

    def test_stationary_census_table_is_normalised(self, six_version_parameters):
        table = stationary_census_table(six_version_parameters)
        total = sum(probability for _, probability in table)
        assert total == pytest.approx(1.0)
        n = six_version_parameters.n_modules
        for (healthy, compromised, unavailable), _ in table:
            assert healthy + compromised + unavailable == n


class TestLifecycleEvents:
    def test_start_chunk_done_sequence(self, six_version_parameters):
        config = _config(six_version_parameters)
        with registry_override(), event_stream() as stream:
            report = simulate_batch(config)
        kinds = [event["event"] for event in stream.events]
        assert kinds[0] == "sim.batch.start"
        assert kinds[-1] == "sim.batch.done"
        assert kinds.count("sim.batch.chunk") == config.chunk_count
        done = stream.events[-1]
        assert done["requests"] == report.requests
        assert done["errors"] == report.errors
        assert done["throughput"] > 0
