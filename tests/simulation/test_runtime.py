"""Tests for the composed perception runtime."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.perception.parameters import PerceptionParameters
from repro.simulation import AgreementModel, PerceptionRuntime


class TestConstruction:
    def test_rejects_single_label(self, four_version_parameters):
        with pytest.raises(SimulationError):
            PerceptionRuntime(four_version_parameters, n_labels=1)

    def test_rejuvenator_only_when_configured(
        self, four_version_parameters, six_version_parameters
    ):
        assert PerceptionRuntime(four_version_parameters).rejuvenator is None
        assert PerceptionRuntime(six_version_parameters).rejuvenator is not None


class TestPerfectModules:
    def test_no_errors_when_p_zero(self):
        params = PerceptionParameters.four_version_defaults(
            p=0.0, p_prime=0.0
        )
        runtime = PerceptionRuntime(params, request_period=1.0, seed=0)
        report = runtime.run(2000.0)
        assert report.errors == 0
        assert report.reliability_safe_skip == 1.0


class TestReportAccounting:
    def test_outcomes_partition_requests(self, four_version_parameters):
        runtime = PerceptionRuntime(four_version_parameters, request_period=1.0, seed=1)
        report = runtime.run(3000.0)
        assert report.correct + report.errors + report.inconclusive == report.requests
        assert report.requests == pytest.approx(3000, abs=3)

    def test_warmup_excluded(self, four_version_parameters):
        runtime = PerceptionRuntime(four_version_parameters, request_period=1.0, seed=2)
        report = runtime.run(1000.0, warmup=500.0)
        assert report.requests == pytest.approx(1000, abs=3)

    def test_reliability_bounds(self, six_version_parameters):
        runtime = PerceptionRuntime(six_version_parameters, request_period=1.0, seed=3)
        report = runtime.run(5000.0)
        assert 0.0 <= report.reliability_strict <= report.reliability_safe_skip <= 1.0


class TestAgainstAnalyticModel:
    def test_four_version_reliability_close(self, four_version_parameters):
        from repro.nversion.reliability import GeneralizedReliability
        from repro.perception.evaluation import evaluate

        general = GeneralizedReliability(
            n_modules=4, threshold=3,
            p=four_version_parameters.p,
            p_prime=four_version_parameters.p_prime,
            alpha=four_version_parameters.alpha,
        )
        analytic = evaluate(
            four_version_parameters, reliability=general
        ).expected_reliability
        runtime = PerceptionRuntime(
            four_version_parameters, request_period=2.0, seed=7
        )
        report = runtime.run(400000.0, warmup=2000.0)
        assert abs(report.reliability_safe_skip - analytic) < 0.025

    def test_rejuvenation_improves_empirical_reliability(self):
        """The paper's headline claim, measured on the executable system."""
        four = PerceptionRuntime(
            PerceptionParameters.four_version_defaults(), request_period=2.0, seed=8
        ).run(200000.0, warmup=2000.0)
        six = PerceptionRuntime(
            PerceptionParameters.six_version_defaults(), request_period=2.0, seed=8
        ).run(200000.0, warmup=2000.0)
        assert six.reliability_safe_skip > four.reliability_safe_skip


class TestPerLabelAgreement:
    def test_per_label_no_less_reliable(self, four_version_parameters):
        worst = PerceptionRuntime(
            four_version_parameters, request_period=2.0, seed=9
        ).run(100000.0)
        per_label = PerceptionRuntime(
            four_version_parameters,
            request_period=2.0,
            agreement=AgreementModel.PER_LABEL,
            seed=9,
        ).run(100000.0)
        assert (
            per_label.reliability_safe_skip >= worst.reliability_safe_skip - 0.01
        )
