"""Watch detectors over the batch runtime: the determinism contract.

The acceptance proofs for ``repro simulate --batch --watch``:

* a clean Fig. 2 stream held against its own analytic Eq. 1 target
  raises **zero** alerts (Ville's inequality in action);
* an injected degradation (``p`` tripled) held against the *clean*
  target fires the drift detector within its certified sample bound;
* the alert stream is byte-identical at ``jobs=1`` and ``jobs=4``; and
* ``repro watch`` replays a recorded ``--events`` file into the exact
  bytes the run's ``--alerts`` file recorded.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.cli import main
from repro.errors import ParameterError
from repro.obs.watch import (
    batch_watch_config,
    batch_windows,
    watch_batch_report,
)
from repro.perception.evaluation import evaluate
from repro.simulation import BatchConfig, BatchMonitorConfig, simulate_batch


def _config(parameters, **overrides) -> BatchConfig:
    base = dict(
        parameters=parameters,
        groups=64,
        rounds=96,
        request_period=0.5,
        seed=3,
        chunk_size=16,
        record_round_totals=True,
    )
    base.update(overrides)
    return BatchConfig(**base)


@pytest.fixture
def analytic_six(six_version_parameters) -> float:
    return evaluate(six_version_parameters).expected_reliability


@pytest.fixture
def degraded_six(six_version_parameters):
    """The paper's 6-version configuration with ``p`` tripled — an
    injected accuracy regression the analytic target knows nothing
    about."""
    return dataclasses.replace(
        six_version_parameters, p=six_version_parameters.p * 3
    )


# ----------------------------------------------------------------------
# windowing
# ----------------------------------------------------------------------
class TestBatchWindows:
    def test_windows_partition_the_measured_rounds(
        self, six_version_parameters, analytic_six
    ):
        config = _config(six_version_parameters, warmup_rounds=16)
        report = simulate_batch(config)
        windows = list(batch_windows(config, report, block=32))
        assert len(windows) == 3  # (96 - 16) / 32, last one short
        assert [w["trials"] for w in windows] == [
            32 * 64, 32 * 64, 16 * 64
        ]
        assert [w["time"] for w in windows] == [24.0, 40.0, 48.0]
        assert sum(w["errors"] for w in windows) == report.errors

    def test_monitored_runs_carry_vote_bookkeeping(
        self, six_version_parameters
    ):
        config = _config(
            six_version_parameters, monitor=BatchMonitorConfig()
        )
        report = simulate_batch(config)
        (window,) = batch_windows(config, report, block=96)
        assert window["participants"] == 96 * 64 * 6  # every module votes
        assert 0 <= window["deviations"] <= window["participants"]
        assert window["flagged"] >= 0

    def test_requires_recorded_round_totals(self, six_version_parameters):
        config = _config(six_version_parameters, record_round_totals=False)
        report = simulate_batch(config)
        with pytest.raises(ParameterError, match="per-round totals"):
            list(batch_windows(config, report, block=32))

    def test_monitored_config_arms_the_consistency_detector(
        self, six_version_parameters, analytic_six
    ):
        config = _config(
            six_version_parameters, monitor=BatchMonitorConfig()
        )
        watch_config = batch_watch_config(config, target=analytic_six)
        assert watch_config.p_deviate_healthy is not None
        assert (
            watch_config.p_deviate_compromised
            > watch_config.p_deviate_healthy
        )


# ----------------------------------------------------------------------
# the three acceptance proofs
# ----------------------------------------------------------------------
class TestDeterministicAlerting:
    def test_clean_stream_raises_zero_alerts(
        self, six_version_parameters, analytic_six
    ):
        config = _config(six_version_parameters)
        report = simulate_batch(config)
        watcher = watch_batch_report(
            config,
            report,
            batch_watch_config(config, target=analytic_six, block=4),
        )
        assert watcher.log.events == []
        assert watcher.log.counts() == {
            "fired": 0, "resolved": 0, "active": 0, "pending": 0
        }

    def test_injected_drift_fires_within_the_certified_bound(
        self, degraded_six, analytic_six
    ):
        config = _config(degraded_six)
        report = simulate_batch(config)
        watcher = watch_batch_report(
            config,
            report,
            batch_watch_config(config, target=analytic_six, block=4),
        )
        assert watcher.log.counts()["fired"] >= 1
        keys = {event["key"] for event in watcher.log.events}
        assert "drift:reliability" in keys
        # the certificate: firing must beat the sample bound computed
        # from the stream's actual (degraded) success rate
        empirical = 1.0 - report.errors / report.requests
        bound = watcher.drift.sample_bound(empirical)
        assert watcher.drift.fired_at_trials is not None
        assert watcher.drift.fired_at_trials <= bound

    def test_alert_stream_is_jobs_invariant(
        self, degraded_six, analytic_six
    ):
        config = _config(degraded_six)
        watch_config = batch_watch_config(
            config, target=analytic_six, block=4
        )
        lines = [
            list(
                watch_batch_report(
                    config, simulate_batch(config, jobs=jobs), watch_config
                ).alert_lines()
            )
            for jobs in (1, 4)
        ]
        assert lines[0] == lines[1], "alert JSONL must not depend on jobs"
        assert len(lines[0]) > 1, "the degraded stream must alert"


# ----------------------------------------------------------------------
# CLI end-to-end: --watch/--alerts and the offline replay
# ----------------------------------------------------------------------
class TestWatchCli:
    def _simulate(self, tmp_path, analytic, jobs, name):
        alerts = tmp_path / f"alerts-{name}.jsonl"
        events = tmp_path / f"events-{name}.jsonl"
        code = main(
            [
                "simulate", "--batch", "--six", "--p", "0.24",
                "--groups", "64", "--horizon", "48", "--warmup", "0",
                "--chunk-size", "16", "--seed", "3",
                "--jobs", str(jobs),
                "--watch", "--watch-target", repr(analytic),
                "--watch-block", "4",
                "--alerts", str(alerts), "--events", str(events),
            ]
        )
        assert code == 0
        return alerts, events

    def test_alert_file_is_byte_stable_across_jobs(
        self, tmp_path, analytic_six
    ):
        one, _ = self._simulate(tmp_path, analytic_six, 1, "j1")
        four, _ = self._simulate(tmp_path, analytic_six, 4, "j4")
        assert one.read_bytes() == four.read_bytes()

    def test_repro_watch_replays_the_recorded_run_byte_identically(
        self, tmp_path, analytic_six, capsys
    ):
        alerts, events = self._simulate(tmp_path, analytic_six, 1, "replay")
        replayed = tmp_path / "replayed.jsonl"
        code = main(
            ["watch", "--events", str(events), "--out", str(replayed)]
        )
        assert code == 0
        assert replayed.read_bytes() == alerts.read_bytes()
        out = capsys.readouterr().out
        assert "alert.firing" in out
        assert "certificate[reliability-drift]" in out

    def test_alert_file_layout_is_plan_then_events(
        self, tmp_path, analytic_six
    ):
        alerts, _ = self._simulate(tmp_path, analytic_six, 1, "layout")
        lines = alerts.read_text().splitlines()
        plan = json.loads(lines[0])
        assert plan["event"] == "watch.plan"
        assert plan["config"]["target"] == pytest.approx(analytic_six)
        kinds = [c["kind"] for c in plan["certificates"]]
        assert "reliability-drift" in kinds
        for line in lines[1:]:
            event = json.loads(line)
            assert event["event"].startswith("alert.")
            assert line == json.dumps(event, sort_keys=True)

    def test_clean_run_emits_no_alert_lines(self, tmp_path, capsys):
        alerts = tmp_path / "clean.jsonl"
        code = main(
            [
                "simulate", "--batch", "--six",
                "--groups", "64", "--horizon", "48", "--warmup", "0",
                "--chunk-size", "16", "--seed", "3",
                "--watch", "--watch-block", "4",
                "--alerts", str(alerts),
            ]
        )
        assert code == 0
        lines = alerts.read_text().splitlines()
        assert len(lines) == 1, "clean stream: the plan line only"
        assert "watch          = 0 fired" in capsys.readouterr().out
