"""Tests for the p / p' derivation pipeline."""

import pytest

from repro.mlsim.accuracy import estimate_parameters


@pytest.fixture(scope="module")
def derived():
    return estimate_parameters(seed=0)


class TestEstimateParameters:
    def test_p_near_paper_operating_point(self, derived):
        """The healthy ensemble inaccuracy lands near the paper's 0.08."""
        assert 0.03 <= derived.p <= 0.15

    def test_p_prime_near_half(self, derived):
        """Corruption degrades toward the paper's p' = 0.5 reading."""
        assert 0.3 <= derived.p_prime <= 0.75

    def test_corruption_strictly_degrades(self, derived):
        for healthy, corrupted in zip(
            derived.healthy_inaccuracies, derived.corrupted_inaccuracies
        ):
            assert corrupted > healthy

    def test_three_versions(self, derived):
        assert len(derived.classifier_names) == 3
        assert len(set(derived.classifier_names)) == 3

    def test_p_is_ensemble_average(self, derived):
        assert derived.p == pytest.approx(
            sum(derived.healthy_inaccuracies) / 3
        )

    def test_summary_renders(self, derived):
        text = derived.summary()
        assert "ensemble average" in text
        for name in derived.classifier_names:
            assert name in text

    def test_reproducible(self):
        a = estimate_parameters(seed=3)
        b = estimate_parameters(seed=3)
        assert a.p == b.p
        assert a.p_prime == b.p_prime

    def test_derived_p_usable_in_model(self, derived):
        """End-to-end: feed the derived scalars into the Eq. 1 pipeline."""
        from repro.perception.evaluation import evaluate
        from repro.perception.parameters import PerceptionParameters

        params = PerceptionParameters.six_version_defaults(
            p=derived.p, p_prime=min(derived.p_prime, 1.0)
        )
        value = evaluate(params).expected_reliability
        assert 0.5 < value <= 1.0
