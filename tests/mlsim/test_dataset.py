"""Tests for the synthetic dataset generator."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.mlsim.dataset import make_traffic_sign_dataset


class TestMakeDataset:
    def test_shapes(self):
        data = make_traffic_sign_dataset(
            n_classes=5, n_features=8, train_per_class=10, test_per_class=4
        )
        assert data.train_x.shape == (50, 8)
        assert data.test_x.shape == (20, 8)
        assert data.n_features == 8
        assert data.n_classes == 5

    def test_all_classes_present(self):
        data = make_traffic_sign_dataset(n_classes=7, train_per_class=3)
        assert set(data.train_y) == set(range(7))

    def test_reproducible_with_seed(self):
        a = make_traffic_sign_dataset(seed=5)
        b = make_traffic_sign_dataset(seed=5)
        assert np.array_equal(a.train_x, b.train_x)
        assert np.array_equal(a.test_y, b.test_y)

    def test_different_seeds_differ(self):
        a = make_traffic_sign_dataset(seed=1)
        b = make_traffic_sign_dataset(seed=2)
        assert not np.array_equal(a.train_x, b.train_x)

    def test_samples_shuffled(self):
        data = make_traffic_sign_dataset(n_classes=5, train_per_class=10)
        # labels should not be sorted blocks after shuffling
        assert not np.array_equal(data.train_y, np.sort(data.train_y))

    def test_noise_controls_separability(self):
        """Low noise -> near-perfect nearest-centroid accuracy."""
        from repro.mlsim.classifiers import NearestCentroidClassifier

        easy = make_traffic_sign_dataset(noise=0.1, seed=0)
        hard = make_traffic_sign_dataset(noise=3.0, seed=0)
        easy_acc = (
            NearestCentroidClassifier()
            .fit(easy.train_x, easy.train_y)
            .accuracy(easy.test_x, easy.test_y)
        )
        hard_acc = (
            NearestCentroidClassifier()
            .fit(hard.train_x, hard.train_y)
            .accuracy(hard.test_x, hard.test_y)
        )
        assert easy_acc > 0.99
        assert hard_acc < easy_acc - 0.2

    def test_validation(self):
        with pytest.raises(ParameterError):
            make_traffic_sign_dataset(n_classes=0)
        with pytest.raises(ParameterError):
            make_traffic_sign_dataset(noise=0.0)
