"""Tests for fault/attack injection on classifiers and inputs."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.mlsim.classifiers import NearestCentroidClassifier
from repro.mlsim.corruption import corrupt_inputs, corrupt_weights
from repro.mlsim.dataset import make_traffic_sign_dataset


@pytest.fixture(scope="module")
def fitted():
    data = make_traffic_sign_dataset(
        n_classes=8, n_features=12, train_per_class=30, test_per_class=20, noise=0.5
    )
    classifier = NearestCentroidClassifier().fit(data.train_x, data.train_y)
    return data, classifier


class TestCorruptWeights:
    def test_degrades_accuracy(self, fitted):
        data, _ = fitted
        classifier = NearestCentroidClassifier().fit(data.train_x, data.train_y)
        before = classifier.accuracy(data.test_x, data.test_y)
        corrupt_weights(classifier, fraction=0.5, rng=np.random.default_rng(0))
        after = classifier.accuracy(data.test_x, data.test_y)
        assert after < before

    def test_unfitted_rejected(self):
        with pytest.raises(ParameterError):
            corrupt_weights(NearestCentroidClassifier())

    def test_fraction_validated(self, fitted):
        _, classifier = fitted
        with pytest.raises(ParameterError):
            corrupt_weights(classifier, fraction=0.0)

    def test_corrupts_requested_fraction(self, fitted):
        data, _ = fitted
        classifier = NearestCentroidClassifier().fit(data.train_x, data.train_y)
        original = classifier.weights.copy()
        corrupt_weights(classifier, fraction=0.25, rng=np.random.default_rng(1))
        changed = np.sum(classifier.weights != original)
        assert changed == max(1, round(0.25 * original.size))


class TestCorruptInputs:
    def test_returns_copy(self, fitted):
        data, _ = fitted
        corrupted = corrupt_inputs(data.test_x, strength=1.0)
        assert corrupted is not data.test_x
        assert not np.allclose(corrupted, data.test_x)

    def test_zero_strength_identity(self, fitted):
        data, _ = fitted
        corrupted = corrupt_inputs(data.test_x, strength=0.0)
        assert np.allclose(corrupted, data.test_x)

    def test_perturbation_norm_bounded(self, fitted):
        data, _ = fitted
        strength = 0.7
        corrupted = corrupt_inputs(
            data.test_x, strength=strength, rng=np.random.default_rng(0)
        )
        norms = np.linalg.norm(corrupted - data.test_x, axis=1)
        assert np.allclose(norms, strength, atol=1e-9)

    def test_degrades_accuracy_with_strength(self, fitted):
        data, classifier = fitted
        accuracies = []
        for strength in (0.0, 1.0, 3.0):
            corrupted = corrupt_inputs(
                data.test_x, strength=strength, rng=np.random.default_rng(2)
            )
            accuracies.append(classifier.accuracy(corrupted, data.test_y))
        assert accuracies[0] > accuracies[1] > accuracies[2]

    def test_negative_strength_rejected(self, fitted):
        data, _ = fitted
        with pytest.raises(ParameterError):
            corrupt_inputs(data.test_x, strength=-1.0)
