"""Tests for the three classifier stand-ins."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.mlsim.classifiers import (
    LogisticRegressionClassifier,
    NearestCentroidClassifier,
    RandomFeatureClassifier,
    default_ensemble,
)
from repro.mlsim.dataset import make_traffic_sign_dataset

ALL = [NearestCentroidClassifier, LogisticRegressionClassifier, RandomFeatureClassifier]


@pytest.fixture(scope="module")
def data():
    return make_traffic_sign_dataset(
        n_classes=8, n_features=12, train_per_class=30, test_per_class=15, noise=0.5
    )


class TestCommonInterface:
    @pytest.mark.parametrize("klass", ALL)
    def test_learns_separable_data(self, klass, data):
        classifier = klass().fit(data.train_x, data.train_y)
        assert classifier.accuracy(data.test_x, data.test_y) > 0.85

    @pytest.mark.parametrize("klass", ALL)
    def test_predict_before_fit_raises(self, klass):
        with pytest.raises(ParameterError, match="not fitted"):
            klass().predict(np.zeros((1, 12)))

    @pytest.mark.parametrize("klass", ALL)
    def test_weights_exposed_after_fit(self, klass, data):
        classifier = klass().fit(data.train_x, data.train_y)
        weights = classifier.weights
        assert weights.ndim == 1
        assert weights.size > 0

    @pytest.mark.parametrize("klass", ALL)
    def test_shape_mismatch_rejected(self, klass):
        with pytest.raises(ParameterError):
            klass().fit(np.zeros((4, 3)), np.zeros(5, dtype=int))


class TestDiversity:
    def test_classifiers_disagree_somewhere(self):
        """Diversity premise of NVP: different mechanisms, different errors."""
        data = make_traffic_sign_dataset(
            n_classes=10, n_features=10, train_per_class=25,
            test_per_class=25, noise=1.3, seed=3,
        )
        predictions = [
            klass().fit(data.train_x, data.train_y).predict(data.test_x)
            for klass in ALL
        ]
        disagreement = (
            np.mean(predictions[0] != predictions[1])
            + np.mean(predictions[1] != predictions[2])
            + np.mean(predictions[0] != predictions[2])
        )
        assert disagreement > 0.05

    def test_default_ensemble_composition(self):
        ensemble = default_ensemble()
        assert [type(c) for c in ensemble] == ALL


class TestHyperparameterValidation:
    def test_logistic_rejects_bad_learning_rate(self):
        with pytest.raises(ParameterError):
            LogisticRegressionClassifier(learning_rate=0.0)

    def test_random_features_rejects_bad_ridge(self):
        with pytest.raises(ParameterError):
            RandomFeatureClassifier(ridge=0.0)
