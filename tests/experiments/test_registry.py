"""Tests for the experiment registry and the cheap experiments."""

import pytest

from repro.errors import ParameterError
from repro.experiments import EXPERIMENT_IDS, run_experiment
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4b
from repro.experiments.headline import run_headline


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        paper_artifacts = {
            "table2-defaults", "fig3", "fig4a", "fig4b", "fig4c", "fig4d",
        }
        assert paper_artifacts <= set(EXPERIMENT_IDS)

    def test_extension_experiments_registered(self):
        extensions = {
            "scaling",
            "architectures",
            "phase-diagram",
            "ablation-selection",
            "ablation-clock",
            "ablation-server",
            "ablation-ticks",
            "ablation-threshold",
            "ablation-downtime",
        }
        assert extensions <= set(EXPERIMENT_IDS)

    def test_unknown_id_rejected(self):
        with pytest.raises(ParameterError, match="valid ids"):
            run_experiment("fig99")

    def test_unknown_id_message_lists_sorted_registry(self):
        with pytest.raises(ParameterError) as error:
            run_experiment("fig99")
        message = str(error.value)
        assert "'fig99'" in message
        listed = message.split("valid ids: ")[1].split(", ")
        assert listed == sorted(EXPERIMENT_IDS)

    def test_run_by_id(self):
        report = run_experiment("table2-defaults")
        assert report.experiment_id == "table2-defaults"


class TestHeadline:
    def test_rows_within_one_percent_of_paper(self):
        report = run_headline()
        for _, measured, paper_value, _ in report.rows:
            assert abs(measured - paper_value) / paper_value < 0.01

    def test_improvement_claim_verified(self):
        report = run_headline()
        (r4_row, r6_row) = report.rows
        assert r6_row[1] / r4_row[1] > 1.13


class TestFig3Small:
    def test_small_grid(self):
        report = run_fig3(intervals=(300, 1000, 3000), find_optimum=False)
        values = [row[1] for row in report.rows]
        assert values[0] > values[1] > values[2]

    def test_series_lengths_match(self):
        report = run_fig3(intervals=(300, 3000), find_optimum=False)
        assert len(report.plot_series["safe-skip"]) == 2


class TestFig4bSmall:
    def test_alpha_extremes(self):
        report = run_fig4b(grid=(0.1, 1.0))
        four = report.plot_series["4v"]
        six = report.plot_series["6v"]
        # low dependency is better for both systems
        assert four[0] > four[1]
        assert six[0] > six[1]
