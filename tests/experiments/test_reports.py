"""Tests for experiment report rendering."""

from repro.experiments.report import ExperimentReport


def make_report(**overrides):
    values = dict(
        experiment_id="fig-test",
        title="test report",
        headers=["x", "y"],
        rows=[[1.0, 0.5], [2.0, 0.6]],
        paper_claims=["y grows"],
        observations=["y grew"],
        plot_series={"y": [0.5, 0.6]},
    )
    values.update(overrides)
    return ExperimentReport(**values)


class TestRender:
    def test_contains_all_sections(self):
        text = make_report().render()
        assert "fig-test" in text
        assert "paper claims:" in text
        assert "y grows" in text
        assert "this reproduction:" in text
        assert "y grew" in text

    def test_plot_suppressible(self):
        with_plot = make_report().render(plot=True)
        without = make_report().render(plot=False)
        assert "legend:" in with_plot
        assert "legend:" not in without

    def test_no_plot_without_series(self):
        text = make_report(plot_series=None).render()
        assert "legend:" not in text

    def test_markdown_table(self):
        text = make_report().render(markdown=True, plot=False)
        assert "| x" in text

    def test_claims_optional(self):
        text = make_report(paper_claims=[], observations=[]).render(plot=False)
        assert "paper claims:" not in text
        assert "this reproduction:" not in text
