"""Tests for the interior-optimum (downtime) experiment."""

import pytest

from repro.experiments.downtime import run_downtime


class TestDowntime:
    @pytest.fixture(scope="class")
    def report(self):
        return run_downtime()

    def test_paper_regime_is_monotone(self, report):
        paper_series = report.plot_series[
            "paper regime (3 s downtime, p'=0.5)"
        ]
        assert all(
            a >= b - 1e-9 for a, b in zip(paper_series, paper_series[1:])
        )

    def test_heavy_downtime_regime_has_interior_optimum(self, report):
        series = report.plot_series[
            "heavy downtime, mild compromise (120 s, p'=0.2)"
        ]
        assert max(series) not in (series[0], series[-1])

    def test_observations_name_the_optimum(self, report):
        text = " ".join(report.observations)
        assert "interior optimum" in text
        assert "monotone" in text
