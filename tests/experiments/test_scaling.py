"""Tests for the scaling experiment."""

import math

from repro.experiments.scaling import run_scaling


class TestScaling:
    def test_grid_covers_4_to_max(self):
        report = run_scaling(max_modules=7)
        assert [row[0] for row in report.rows] == [4, 5, 6, 7]

    def test_rejuvenation_undefined_below_six(self):
        report = run_scaling(max_modules=6)
        by_n = {row[0]: row[2] for row in report.rows}
        assert math.isnan(by_n[4])
        assert math.isnan(by_n[5])
        assert not math.isnan(by_n[6])

    def test_fixed_threshold_penalizes_extra_clockless_modules(self):
        """With 2f+1 fixed, more mostly-compromised voters mean more
        error mass: E[R] decreases in N."""
        report = run_scaling(max_modules=8)
        plain = [row[1] for row in report.rows]
        assert all(a > b for a, b in zip(plain, plain[1:]))

    def test_rejuvenation_dominates(self):
        report = run_scaling(max_modules=8)
        plain = {row[0]: row[1] for row in report.rows}
        rejuvenating = {
            row[0]: row[2] for row in report.rows if not math.isnan(row[2])
        }
        assert min(rejuvenating.values()) > max(plain.values())
