"""Tests for the architecture-zoo experiment."""

import pytest

from repro.errors import ParameterError
from repro.experiments.architectures import run_architectures
from repro.perception.parameters import PerceptionParameters


class TestEnforceBftMinimumFlag:
    def test_below_minimum_rejected_by_default(self):
        with pytest.raises(ParameterError):
            PerceptionParameters(n_modules=2, f=1)

    def test_flag_allows_small_pools(self):
        parameters = PerceptionParameters(
            n_modules=2, f=1, enforce_bft_minimum=False
        )
        assert parameters.n_modules == 2

    def test_flag_does_not_bypass_other_validation(self):
        with pytest.raises(ParameterError):
            PerceptionParameters(
                n_modules=2, f=1, p=2.0, enforce_bft_minimum=False
            )


class TestRunArchitectures:
    @pytest.fixture(scope="class")
    def report(self):
        return run_architectures()

    def test_all_five_architectures(self, report):
        assert len(report.rows) == 5

    def test_safe_skip_values_are_probabilities(self, report):
        for row in report.rows:
            assert 0.0 <= row[3] <= 1.0
            assert 0.0 <= row[4] <= 1.0

    def test_strict_never_exceeds_safe_skip(self, report):
        for row in report.rows:
            assert row[4] <= row[3] + 1e-9

    def test_unanimity_tops_safe_skip(self, report):
        by_name = {row[0]: row for row in report.rows}
        unanimity = by_name["5-version unanimity [12]"]
        assert unanimity[3] == max(row[3] for row in report.rows)

    def test_unanimity_collapses_under_strict(self, report):
        by_name = {row[0]: row for row in report.rows}
        unanimity = by_name["5-version unanimity [12]"]
        assert unanimity[4] < 0.2

    def test_rejuvenating_bft_best_under_strict(self, report):
        by_name = {row[0]: row for row in report.rows}
        rejuvenating = by_name["6-version BFT 2f+r+1 + rejuvenation (paper)"]
        assert rejuvenating[4] == max(row[4] for row in report.rows)
