"""Tests for the ablation experiments and the net-builder knobs behind them."""

import numpy as np
import pytest

from repro.dspn import solve_steady_state
from repro.errors import ParameterError
from repro.experiments.ablations import (
    run_ablation_clock,
    run_ablation_threshold,
    run_ablation_ticks,
)
from repro.perception.parameters import PerceptionParameters
from repro.perception.rejuvenation import build_rejuvenation_net


class TestBuilderKnobs:
    def test_unknown_selection_rejected(self, six_version_parameters):
        with pytest.raises(ParameterError, match="selection policy"):
            build_rejuvenation_net(six_version_parameters, selection="psychic")

    def test_unknown_clock_rejected(self, six_version_parameters):
        with pytest.raises(ParameterError, match="clock kind"):
            build_rejuvenation_net(six_version_parameters, clock="quartz")

    def test_exponential_clock_is_ctmc(self, six_version_parameters):
        net = build_rejuvenation_net(six_version_parameters, clock="exponential")
        assert solve_steady_state(net).method == "ctmc"

    def test_oracle_selects_compromised_when_available(self, six_version_parameters):
        net = build_rejuvenation_net(six_version_parameters, selection="oracle")
        marking = net.marking({"Pmh": 4, "Pmc": 2, "Pac": 1, "Prc": 1})
        w1 = net.transitions["Trj1"].weight_in(marking)
        w2 = net.transitions["Trj2"].weight_in(marking)
        assert w1 / (w1 + w2) > 0.999

    def test_lost_ticks_flush_activation(self, six_version_parameters):
        net = build_rejuvenation_net(six_version_parameters, lost_ticks=True)
        # a blocked tick: module failed (g2 false), activation pending
        marking = net.marking({"Pmh": 5, "Pmf": 1, "Ptr": 1, "Pac": 1})
        trt = net.transitions["Trt"]
        assert net.is_enabled(trt, marking)
        after = net.fire(trt, marking)
        assert after["Pac"] == 0

    def test_deferred_ticks_keep_activation(self, six_version_parameters):
        net = build_rejuvenation_net(six_version_parameters, lost_ticks=False)
        marking = net.marking({"Pmh": 5, "Pmf": 1, "Ptr": 1, "Pac": 1})
        after = net.fire(net.transitions["Trt"], marking)
        assert after["Pac"] == 1


class TestAblationOrderings:
    def test_clock_ablation_ordering(self):
        report = run_ablation_clock()
        values = {row[0]: row[2] for row in report.rows}
        assert values["deterministic"] > values["exponential"]

    def test_tick_ablation_negligible_at_defaults(self):
        report = run_ablation_ticks()
        values = {row[0]: row[1] for row in report.rows}
        assert np.isclose(
            values["deferred (paper)"], values["lost"], atol=1e-4
        )

    def test_threshold_ablation_uses_same_net(self):
        report = run_ablation_threshold()
        assert len(report.rows) == 2
        assert report.rows[0][1] != report.rows[1][1]
