"""Tests for the python -m repro.experiments entry point."""

from repro.experiments.__main__ import main


class TestExperimentsMain:
    def test_runs_selected_experiment(self, capsys):
        assert main(["table2-defaults"]) == 0
        output = capsys.readouterr().out
        assert "table2-defaults" in output
        assert "E[R_4v]" in output

    def test_runs_multiple(self, capsys):
        assert main(["ablation-ticks", "ablation-clock"]) == 0
        output = capsys.readouterr().out
        assert "ablation-ticks" in output
        assert "ablation-clock" in output
