"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAnalyze:
    def test_six_version(self, capsys):
        assert main(["analyze", "--six"]) == 0
        output = capsys.readouterr().out
        assert "E[R_sys] = 0.9430" in output
        assert "voting threshold 4" in output

    def test_four_version(self, capsys):
        assert main(["analyze", "--four"]) == 0
        assert "E[R_sys] = 0.8223" in capsys.readouterr().out

    def test_custom_configuration(self, capsys):
        assert main(
            ["analyze", "--versions", "7", "--f", "2", "--top", "3"]
        ) == 0
        output = capsys.readouterr().out
        assert "7-version system (no rejuvenation), f=2" in output
        assert output.count("pi =") == 3

    def test_parameter_override(self, capsys):
        main(["analyze", "--six", "--p-prime", "0.8"])
        high = capsys.readouterr().out
        main(["analyze", "--six"])
        default = capsys.readouterr().out
        assert high != default

    def test_missing_configuration_exits(self):
        with pytest.raises(SystemExit):
            main(["analyze"])

    def test_invalid_configuration_reports_error(self, capsys):
        # 4 modules cannot support rejuvenation with f=1, r=1
        assert main(
            ["analyze", "--versions", "4", "--rejuvenation"]
        ) == 2
        assert "error:" in capsys.readouterr().err


class TestSweep:
    def test_sweep_table(self, capsys):
        assert main(
            ["sweep", "--four", "--parameter", "p", "--values", "0.05,0.1"]
        ) == 0
        output = capsys.readouterr().out
        assert "0.05" in output
        assert "best:" in output

    def test_unknown_parameter(self, capsys):
        assert main(
            ["sweep", "--four", "--parameter", "bogus", "--values", "1"]
        ) == 2
        assert "cannot sweep" in capsys.readouterr().err


class TestExperiments:
    def test_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        output = capsys.readouterr().out
        assert "table2-defaults" in output
        assert "fig4d" in output

    def test_run_single(self, capsys):
        assert main(["experiments", "table2-defaults", "--no-plot"]) == 0
        assert "paper claims:" in capsys.readouterr().out

    def test_unknown_id(self, capsys):
        assert main(["experiments", "fig99"]) == 2
        assert "valid ids" in capsys.readouterr().err


class TestSimulate:
    def test_covers_analytic(self, capsys):
        assert main(
            [
                "simulate", "--four",
                "--horizon", "30000", "--warmup", "500",
                "--replications", "4", "--seed", "3",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "analytic E[R]" in output
        assert "simulated E[R]" in output


class TestMetrics:
    def test_four_version_metrics(self, capsys):
        assert main(["metrics", "--four", "--mission", "7200"]) == 0
        output = capsys.readouterr().out
        assert "mean time to first quorum loss" in output
        assert "expected misperceptions" in output
        assert "mttc" in output

    def test_rejuvenating_configuration_reports_error(self, capsys):
        assert main(["metrics", "--six"]) == 2
        assert "error:" in capsys.readouterr().err


class TestMonitor:
    def test_policy_comparison_table(self, capsys):
        assert main(
            [
                "monitor", "--six",
                "--policy", "periodic,threshold",
                "--horizon", "3000", "--seed", "7",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "false-trigger rate" in output
        assert "-- steady / periodic (seed 7)" in output
        assert "-- steady / threshold (seed 7)" in output
        assert "rolling reliability" in output

    def test_attack_scenario(self, capsys):
        assert main(
            [
                "monitor", "--six",
                "--policy", "threshold",
                "--horizon", "3000", "--attack",
            ]
        ) == 0
        assert "-- attack / threshold" in capsys.readouterr().out

    def test_unknown_policy_exits(self):
        with pytest.raises(SystemExit, match="unknown policy"):
            main(["monitor", "--six", "--policy", "oracle"])


class TestProvision:
    def test_feasible_target(self, capsys):
        assert main(["provision", "--four", "--target", "0.93"]) == 0
        output = capsys.readouterr().out
        assert "cheapest: N=6, f=1, rejuvenation" in output

    def test_infeasible_target_returns_one(self, capsys):
        assert main(["provision", "--four", "--target", "0.999"]) == 1
        assert "no configuration" in capsys.readouterr().out

    def test_cost_model_changes_winner(self, capsys):
        # make rejuvenation machinery prohibitively expensive at a low target
        main(
            [
                "provision", "--four", "--target", "0.5",
                "--rejuvenation-cost", "100",
            ]
        )
        output = capsys.readouterr().out
        assert "cheapest: N=4, f=1, no rejuvenation" in output


class TestExports:
    def test_dot(self, capsys):
        assert main(["dot", "--six"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("digraph")
        assert "Trc" in output

    def test_pnml_four(self, capsys):
        assert main(["pnml", "--four"]) == 0
        assert "<pnml" in capsys.readouterr().out

    def test_pnml_refuses_rejuvenation(self):
        with pytest.raises(SystemExit, match="clockless"):
            main(["pnml", "--six"])
