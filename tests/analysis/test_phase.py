"""Tests for two-parameter phase diagrams."""

import pytest

from repro.analysis.phase import phase_diagram
from repro.errors import ParameterError
from repro.perception.parameters import PerceptionParameters


@pytest.fixture(scope="module")
def small_diagram():
    return phase_diagram(
        PerceptionParameters.four_version_defaults(),
        PerceptionParameters.six_version_defaults(),
        "p_prime", [0.15, 0.5],
        "mttc", [400.0, 1523.0],
        label_a="4v", label_b="6v",
    )


class TestPhaseDiagram:
    def test_advantage_shape(self, small_diagram):
        assert len(small_diagram.advantage) == 2  # y rows
        assert len(small_diagram.advantage[0]) == 2  # x columns

    def test_known_winners(self, small_diagram):
        # at (p'=0.5, mttc=1523): the paper's default, 6v wins
        assert small_diagram.winner(1, 1) == "6v"
        # at (p'=0.15, mttc=1523): Fig. 4d's left side, 4v wins
        assert small_diagram.winner(1, 0) == "4v"

    def test_advantage_signs_match_winner(self, small_diagram):
        for row in range(2):
            for column in range(2):
                advantage = small_diagram.advantage[row][column]
                winner = small_diagram.winner(row, column)
                assert (advantage > 0) == (winner == "6v")

    def test_render_contains_grid(self, small_diagram):
        text = small_diagram.render()
        assert "phase diagram" in text
        assert "p_prime" in text and "mttc" in text
        assert "6" in text and "4" in text

    def test_same_parameter_rejected(self):
        with pytest.raises(ParameterError):
            phase_diagram(
                PerceptionParameters.four_version_defaults(),
                PerceptionParameters.six_version_defaults(),
                "p", [0.1], "p", [0.2],
            )

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ParameterError):
            phase_diagram(
                PerceptionParameters.four_version_defaults(),
                PerceptionParameters.six_version_defaults(),
                "n_modules", [4], "p", [0.1],
            )

    def test_empty_grid_rejected(self):
        with pytest.raises(ParameterError):
            phase_diagram(
                PerceptionParameters.four_version_defaults(),
                PerceptionParameters.six_version_defaults(),
                "p_prime", [], "mttc", [400.0],
            )
