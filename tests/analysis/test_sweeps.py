"""Tests for parameter sweeps."""

import pytest

from repro.errors import ParameterError
from repro.analysis.sweeps import sweep_parameter
from repro.perception.parameters import PerceptionParameters


class TestSweepParameter:
    def test_values_align(self, four_version_parameters):
        result = sweep_parameter(four_version_parameters, "p", [0.05, 0.1])
        assert result.values == (0.05, 0.1)
        assert len(result.reliabilities) == 2

    def test_reliability_decreases_in_p(self, four_version_parameters):
        result = sweep_parameter(four_version_parameters, "p", [0.01, 0.1, 0.2])
        r = result.reliabilities
        assert r[0] > r[1] > r[2]

    def test_reliability_decreases_in_p_prime(self, four_version_parameters):
        result = sweep_parameter(four_version_parameters, "p_prime", [0.2, 0.5, 0.8])
        r = result.reliabilities
        assert r[0] > r[1] > r[2]

    def test_reliability_increases_in_mttc(self, four_version_parameters):
        result = sweep_parameter(four_version_parameters, "mttc", [500, 2000, 8000])
        r = result.reliabilities
        assert r[0] < r[1] < r[2]

    def test_argmax(self, four_version_parameters):
        result = sweep_parameter(four_version_parameters, "mttc", [500, 8000])
        value, reliability = result.argmax()
        assert value == 8000
        assert reliability == max(result.reliabilities)

    def test_as_rows(self, four_version_parameters):
        result = sweep_parameter(four_version_parameters, "p", [0.05])
        ((x, y),) = result.as_rows()
        assert x == 0.05

    def test_unknown_parameter_rejected(self, four_version_parameters):
        with pytest.raises(ParameterError, match="cannot sweep"):
            sweep_parameter(four_version_parameters, "n_modules", [4, 6])

    def test_empty_values_rejected(self, four_version_parameters):
        with pytest.raises(ParameterError):
            sweep_parameter(four_version_parameters, "p", [])

    def test_base_parameters_unmodified(self, four_version_parameters):
        sweep_parameter(four_version_parameters, "p", [0.2])
        assert four_version_parameters.p == 0.08
