"""Tests for elasticity analysis."""

import pytest

from repro.analysis.sensitivity import elasticities
from repro.errors import ParameterError


class TestElasticities:
    def test_sorted_by_magnitude(self, four_version_parameters):
        results = elasticities(four_version_parameters, ["p", "p_prime", "mttr"])
        magnitudes = [abs(e.elasticity) for e in results]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_signs_match_physics(self, four_version_parameters):
        results = {
            e.parameter: e.elasticity
            for e in elasticities(four_version_parameters, ["p_prime", "mttc"])
        }
        assert results["p_prime"] < 0  # worse compromised accuracy hurts
        assert results["mttc"] > 0  # longer time-to-compromise helps

    def test_p_prime_dominates_mttr(self, four_version_parameters):
        """At the default operating point, compromised inaccuracy matters
        far more than the 3-second repair time."""
        results = {
            e.parameter: abs(e.elasticity)
            for e in elasticities(four_version_parameters, ["p_prime", "mttr"])
        }
        assert results["p_prime"] > 10 * results["mttr"]

    def test_unknown_parameter_rejected(self, four_version_parameters):
        with pytest.raises(ParameterError):
            elasticities(four_version_parameters, ["voltage"])

    def test_bad_step_rejected(self, four_version_parameters):
        with pytest.raises(ParameterError):
            elasticities(four_version_parameters, ["p"], relative_step=0.9)

    def test_base_values_recorded(self, four_version_parameters):
        (result,) = elasticities(four_version_parameters, ["mttc"])
        assert result.base_value == 1523.0
