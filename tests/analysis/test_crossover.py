"""Tests for crossover detection."""

import pytest

from repro.analysis.crossover import find_crossovers
from repro.errors import ParameterError
from repro.perception.parameters import PerceptionParameters


@pytest.fixture
def configs():
    return (
        PerceptionParameters.four_version_defaults(),
        PerceptionParameters.six_version_defaults(),
    )


class TestFindCrossovers:
    def test_p_prime_crossover_near_paper_value(self, configs):
        """The paper reports rejuvenation pays off for p' > 0.3."""
        a, b = configs
        crossings = find_crossovers(a, b, "p_prime", [0.1, 0.3, 0.5])
        assert len(crossings) == 1
        crossing = crossings[0]
        assert 0.2 < crossing.value < 0.35
        assert crossing.winner_above == "b"  # 6v wins for larger p'

    def test_no_crossover_in_flat_region(self, configs):
        a, b = configs
        crossings = find_crossovers(a, b, "p_prime", [0.5, 0.6, 0.7])
        assert crossings == []

    def test_grid_too_small_rejected(self, configs):
        a, b = configs
        with pytest.raises(ParameterError):
            find_crossovers(a, b, "p_prime", [0.5])

    def test_unknown_parameter_rejected(self, configs):
        a, b = configs
        with pytest.raises(ParameterError):
            find_crossovers(a, b, "f", [1, 2])

    def test_reliability_at_crossover_consistent(self, configs):
        from repro.perception.evaluation import evaluate

        a, b = configs
        (crossing,) = find_crossovers(a, b, "p_prime", [0.1, 0.5])
        at_a = evaluate(a.replace(p_prime=crossing.value)).expected_reliability
        at_b = evaluate(b.replace(p_prime=crossing.value)).expected_reliability
        assert abs(at_a - at_b) < 1e-6
        assert abs(crossing.reliability - at_a) < 1e-9
