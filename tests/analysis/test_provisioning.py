"""Tests for the provisioning optimizer."""

import pytest

from repro.analysis.provisioning import (
    cheapest_configuration,
    provisioning_options,
)
from repro.errors import ParameterError
from repro.perception.parameters import PerceptionParameters


@pytest.fixture(scope="module")
def base():
    return PerceptionParameters.four_version_defaults()


class TestProvisioningOptions:
    def test_sorted_by_cost(self, base):
        options = provisioning_options(base, target_reliability=0.8)
        costs = [option.cost for option in options]
        assert costs == sorted(costs)

    def test_all_meet_target(self, base):
        target = 0.9
        options = provisioning_options(base, target_reliability=target)
        assert options  # the rejuvenating configurations reach 0.94+
        assert all(option.reliability >= target for option in options)

    def test_impossible_target_empty(self, base):
        assert provisioning_options(base, target_reliability=0.9999) == []

    def test_respects_bft_minimums(self, base):
        options = provisioning_options(base, target_reliability=0.0)
        for option in options:
            p = option.parameters
            minimum = 3 * p.f + (2 * p.r + 1 if p.rejuvenation else 1)
            assert p.n_modules >= minimum

    def test_costs_computed(self, base):
        options = provisioning_options(
            base,
            target_reliability=0.0,
            module_cost=2.0,
            rejuvenation_cost=3.0,
        )
        for option in options:
            expected = 2.0 * option.parameters.n_modules + (
                3.0 if option.parameters.rejuvenation else 0.0
            )
            assert option.cost == expected

    def test_bounds_validated(self, base):
        with pytest.raises(ParameterError):
            provisioning_options(base, target_reliability=0.8, max_modules=3)
        with pytest.raises(ParameterError):
            provisioning_options(base, target_reliability=1.5)


class TestCheapestConfiguration:
    def test_matches_first_option(self, base):
        options = provisioning_options(base, target_reliability=0.9)
        cheapest = cheapest_configuration(base, target_reliability=0.9)
        assert cheapest == options[0]

    def test_none_when_infeasible(self, base):
        assert cheapest_configuration(base, target_reliability=0.9999) is None

    def test_high_target_needs_rejuvenation(self, base):
        """At Table II faults, only rejuvenating systems exceed 0.93."""
        cheapest = cheapest_configuration(base, target_reliability=0.93)
        assert cheapest is not None
        assert cheapest.parameters.rejuvenation

    def test_low_target_prefers_small_plain_pool(self, base):
        cheapest = cheapest_configuration(
            base, target_reliability=0.5, rejuvenation_cost=10.0
        )
        assert cheapest is not None
        assert not cheapest.parameters.rejuvenation
        assert cheapest.parameters.n_modules == 4

    def test_description(self, base):
        cheapest = cheapest_configuration(base, target_reliability=0.93)
        assert "rejuvenation" in cheapest.description
