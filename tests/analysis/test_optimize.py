"""Tests for optimal-interval search."""

import pytest

from repro.analysis.optimize import optimal_rejuvenation_interval
from repro.errors import ParameterError
from repro.nversion.conventions import OutputConvention
from repro.perception.parameters import PerceptionParameters


class TestOptimalInterval:
    def test_requires_rejuvenating_configuration(self, four_version_parameters):
        with pytest.raises(ParameterError, match="rejuvenat"):
            optimal_rejuvenation_interval(four_version_parameters)

    def test_bounds_validated(self, six_version_parameters):
        with pytest.raises(ParameterError):
            optimal_rejuvenation_interval(six_version_parameters, low=100, high=50)

    def test_safe_skip_optimum_at_lower_bound(self, six_version_parameters):
        """Under the printed formulas the curve is monotone decreasing,
        so the bounded search lands at (or hugs) the left bracket."""
        optimum = optimal_rejuvenation_interval(
            six_version_parameters, low=200.0, high=1500.0, tolerance=5.0
        )
        assert optimum.interval < 300.0
        assert optimum.reliability > 0.945

    def test_optimum_beats_default(self, six_version_parameters):
        from repro.perception.evaluation import evaluate

        optimum = optimal_rejuvenation_interval(
            six_version_parameters, low=200.0, high=1500.0, tolerance=10.0
        )
        default_reliability = evaluate(six_version_parameters).expected_reliability
        assert optimum.reliability >= default_reliability

    def test_reports_evaluation_count(self, six_version_parameters):
        optimum = optimal_rejuvenation_interval(
            six_version_parameters, low=300.0, high=900.0, tolerance=50.0
        )
        assert optimum.evaluations > 2

    def test_strict_convention_supported(self, six_version_parameters):
        optimum = optimal_rejuvenation_interval(
            six_version_parameters,
            low=200.0,
            high=900.0,
            tolerance=50.0,
            convention=OutputConvention.STRICT_CORRECT,
        )
        assert 0.0 < optimum.reliability < 1.0
