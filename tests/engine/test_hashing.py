"""Property tests of the canonical net fingerprint (hypothesis).

The two contracts the cache depends on:

* **invariance** — the digest must not change under place/transition
  insertion-order permutations (satellite a), and
* **distinctness** — any change to a rate, delay, weight or initial
  marking must change the digest.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.engine import (
    net_fingerprint,
    reliability_fingerprint,
    reward_cache_key,
    solver_cache_key,
)
from repro.nversion.reliability import GeneralizedReliability
from repro.perception.no_rejuvenation import build_no_rejuvenation_net
from repro.perception.parameters import PerceptionParameters
from repro.perception.rejuvenation import build_rejuvenation_net
from repro.petri import NetBuilder

PLACES = (("P1", 1), ("P2", 0), ("P3", 2))
TRANSITIONS = (
    ("t12", 0.5, "P1", "P2"),
    ("t23", 1.5, "P2", "P3"),
    ("t31", 2.0, "P3", "P1"),
)


def _cycle_net(
    place_order=PLACES,
    transition_order=TRANSITIONS,
    *,
    name="cycle",
    tokens=None,
    rates=None,
    delay=None,
):
    builder = NetBuilder(name)
    for place, initial in place_order:
        builder.place(place, tokens=tokens.get(place, initial) if tokens else initial)
    for transition, rate, source, target in transition_order:
        builder.exponential(
            transition,
            rate=rates.get(transition, rate) if rates else rate,
            inputs={source: 1},
            outputs={target: 1},
        )
    if delay is not None:
        builder.deterministic(
            "tick", delay=delay, inputs={"P1": 1}, outputs={"P2": 1}
        )
    return builder.build()


REFERENCE = net_fingerprint(_cycle_net())


class TestInsertionOrderInvariance:
    @given(st.permutations(PLACES), st.permutations(TRANSITIONS))
    @settings(max_examples=30, deadline=None)
    def test_permuted_builds_hash_identically(self, place_order, transition_order):
        assert net_fingerprint(_cycle_net(place_order, transition_order)) == REFERENCE

    def test_net_name_is_excluded(self):
        assert net_fingerprint(_cycle_net(name="renamed")) == REFERENCE

    def test_rebuilt_perception_nets_hash_identically(self):
        parameters = PerceptionParameters.six_version_defaults()
        first = build_rejuvenation_net(parameters)
        second = build_rejuvenation_net(parameters)
        assert first is not second
        assert net_fingerprint(first) == net_fingerprint(second)


class TestDistinctness:
    @given(st.floats(0.01, 50.0), st.floats(0.01, 50.0))
    @settings(max_examples=30, deadline=None)
    def test_differing_rates_hash_differently(self, rate_a, rate_b):
        a = net_fingerprint(_cycle_net(rates={"t12": rate_a}))
        b = net_fingerprint(_cycle_net(rates={"t12": rate_b}))
        assert (a == b) == (rate_a == rate_b)

    @given(st.integers(0, 6), st.integers(0, 6))
    @settings(max_examples=30, deadline=None)
    def test_differing_initial_markings_hash_differently(self, tokens_a, tokens_b):
        a = net_fingerprint(_cycle_net(tokens={"P2": tokens_a}))
        b = net_fingerprint(_cycle_net(tokens={"P2": tokens_b}))
        assert (a == b) == (tokens_a == tokens_b)

    @given(st.floats(0.1, 100.0), st.floats(0.1, 100.0))
    @settings(max_examples=30, deadline=None)
    def test_differing_delays_hash_differently(self, delay_a, delay_b):
        a = net_fingerprint(_cycle_net(delay=delay_a))
        b = net_fingerprint(_cycle_net(delay=delay_b))
        assert (a == b) == (delay_a == delay_b)

    def test_perception_parameters_reach_the_digest(self):
        base = PerceptionParameters.four_version_defaults()
        digests = {
            net_fingerprint(build_no_rejuvenation_net(base)),
            net_fingerprint(build_no_rejuvenation_net(base.replace(mttc=999.0))),
            net_fingerprint(build_no_rejuvenation_net(base.replace(mttf=999.0))),
            net_fingerprint(build_no_rejuvenation_net(base.replace(mttr=9.0))),
        }
        assert len(digests) == 4

    def test_rejuvenation_variants_reach_the_digest(self):
        parameters = PerceptionParameters.six_version_defaults()
        digests = {
            net_fingerprint(build_rejuvenation_net(parameters)),
            net_fingerprint(build_rejuvenation_net(parameters, clock="exponential")),
            net_fingerprint(build_rejuvenation_net(parameters, selection="oracle")),
            net_fingerprint(build_rejuvenation_net(parameters, lost_ticks=True)),
        }
        assert len(digests) == 4


class TestCacheKeys:
    def test_solver_key_separates_options(self):
        net = _cycle_net()
        keys = {
            solver_cache_key(net, max_states=100, method="auto"),
            solver_cache_key(net, max_states=200, method="auto"),
            solver_cache_key(net, max_states=100, method="mrgp"),
        }
        assert len(keys) == 3

    def test_reward_key_separates_reliability_functions(self):
        net = _cycle_net()
        fp_a = reliability_fingerprint(
            GeneralizedReliability(n_modules=6, threshold=4, p=0.1, p_prime=0.5, alpha=0.9)
        )
        fp_b = reliability_fingerprint(
            GeneralizedReliability(n_modules=6, threshold=3, p=0.1, p_prime=0.5, alpha=0.9)
        )
        assert fp_a != fp_b
        assert reward_cache_key(
            net, reliability_fp=fp_a, max_states=100
        ) != reward_cache_key(net, reliability_fp=fp_b, max_states=100)

    def test_reward_and_solver_keys_never_alias(self):
        net = _cycle_net()
        fp = reliability_fingerprint(
            GeneralizedReliability(n_modules=6, threshold=4, p=0.1, p_prime=0.5, alpha=0.9)
        )
        assert solver_cache_key(
            net, max_states=100, method="auto"
        ) != reward_cache_key(net, reliability_fp=fp, max_states=100)

    def test_ad_hoc_callables_have_no_fingerprint(self):
        assert reliability_fingerprint(lambda i, j, k: 1.0) is None
