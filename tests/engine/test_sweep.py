"""Tests of deterministic chunking and ordered parallel reassembly."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.engine import SweepPlan, chunk_points, resolve_jobs, sweep
from repro.errors import ParameterError


def _square_minus(value: float, offset: float = 0.0) -> float:
    """Module-level (hence picklable) point function for pool tests."""
    return value * value - offset


class TestResolveJobs:
    def test_passthrough(self):
        assert resolve_jobs(3) == 3

    def test_none_and_zero_mean_all_cpus(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)

    def test_negative_rejected(self):
        with pytest.raises(ParameterError, match="jobs"):
            resolve_jobs(-2)


class TestChunkPoints:
    @given(st.integers(0, 500), st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_chunks_partition_the_index_space(self, n_points, jobs):
        chunks = chunk_points(n_points, jobs)
        flattened = [index for chunk in chunks for index in chunk]
        assert flattened == list(range(n_points))

    @given(st.integers(0, 500), st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_chunking_is_deterministic(self, n_points, jobs):
        assert chunk_points(n_points, jobs) == chunk_points(n_points, jobs)

    def test_explicit_chunk_size(self):
        assert chunk_points(10, 4, chunk_size=3) == [
            range(0, 3),
            range(3, 6),
            range(6, 9),
            range(9, 10),
        ]

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ParameterError, match="chunk_size"):
            chunk_points(10, 4, chunk_size=0)


class TestSweepPlan:
    def test_add_returns_consecutive_indices(self):
        plan = SweepPlan(_square_minus)
        assert [plan.add(float(v)) for v in range(5)] == [0, 1, 2, 3, 4]
        assert len(plan) == 5

    def test_over_builds_single_argument_points(self):
        plan = SweepPlan.over(_square_minus, [1.0, 2.0, 3.0])
        assert plan.run() == [1.0, 4.0, 9.0]

    def test_empty_plan_runs_to_empty(self):
        assert SweepPlan(_square_minus).run(jobs=4) == []

    def test_results_come_back_in_point_order(self):
        plan = SweepPlan(_square_minus)
        values = [float(v) for v in range(37)]
        for value in values:
            plan.add(value, 1.0)
        serial = plan.run(jobs=1)
        assert serial == [v * v - 1.0 for v in values]

    def test_parallel_equals_serial(self):
        plan = SweepPlan(_square_minus)
        for value in range(23):
            plan.add(float(value), 0.5)
        assert plan.run(jobs=4) == plan.run(jobs=1)

    def test_parallel_respects_chunk_size(self):
        plan = SweepPlan.over(_square_minus, [float(v) for v in range(11)])
        assert plan.run(jobs=2, chunk_size=2) == plan.run(jobs=1)

    def test_sweep_convenience(self):
        assert sweep(_square_minus, [2.0, 3.0], jobs=2) == [4.0, 9.0]
