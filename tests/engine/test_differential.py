"""The differential harness: every execution mode must agree.

Three differentials, the first two enumerated over the experiment
registry itself (a new experiment is covered the moment it is
registered — there is no hand-maintained list here):

* cached (cold disk, then warm disk) == uncached serial,
* parallel (``--jobs``, default 4) == serial,
* the CTMC and MRGP solver routes agree wherever both apply.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dspn.steady_state import solve_steady_state
from repro.engine import cache_override
from repro.errors import UnsupportedModelError
from repro.experiments.registry import EXPERIMENT_IDS, run_experiment
from repro.perception.no_rejuvenation import build_no_rejuvenation_net
from repro.perception.parameters import PerceptionParameters
from repro.perception.rejuvenation import build_rejuvenation_net


class TestCachedEqualsUncached:
    @pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
    def test_cold_and_warm_cache_render_identically(
        self, experiment_id, baseline_render, tmp_path
    ):
        with cache_override(enabled=True, directory=tmp_path):
            cold = run_experiment(experiment_id).render(plot=False)
        # a fresh override drops the in-memory tier: the warm run must
        # reproduce the report purely from verified disk entries
        with cache_override(enabled=True, directory=tmp_path):
            warm = run_experiment(experiment_id).render(plot=False)
        assert cold == baseline_render(experiment_id)
        assert warm == cold


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
    def test_parallel_renders_identically(
        self, experiment_id, baseline_render, engine_jobs
    ):
        with cache_override(enabled=True, directory=None):
            parallel = run_experiment(experiment_id, jobs=engine_jobs).render(
                plot=False
            )
        assert parallel == baseline_render(experiment_id)


def _exponential_only_nets():
    """Nets solvable by both analytic routes (no deterministic firings)."""
    six = PerceptionParameters.six_version_defaults()
    return [
        pytest.param(
            build_no_rejuvenation_net(PerceptionParameters.four_version_defaults()),
            id="four-version",
        ),
        pytest.param(
            build_rejuvenation_net(six, clock="exponential"),
            id="six-version-exponential-clock",
        ),
    ]


class TestSolverRouteAgreement:
    @pytest.mark.parametrize("net", _exponential_only_nets())
    def test_ctmc_and_mrgp_agree(self, net):
        with cache_override(enabled=False):
            ctmc = solve_steady_state(net, method="ctmc")
            mrgp = solve_steady_state(net, method="mrgp")
        assert ctmc.method == "ctmc"
        assert mrgp.method == "mrgp"
        assert ctmc.markings == mrgp.markings
        np.testing.assert_allclose(mrgp.pi, ctmc.pi, atol=1e-10)

    def test_auto_picks_ctmc_for_exponential_nets(self):
        net = build_no_rejuvenation_net(
            PerceptionParameters.four_version_defaults()
        )
        with cache_override(enabled=False):
            assert solve_steady_state(net).method == "ctmc"

    def test_auto_picks_mrgp_for_deterministic_nets(self):
        net = build_rejuvenation_net(PerceptionParameters.six_version_defaults())
        with cache_override(enabled=False):
            assert solve_steady_state(net).method == "mrgp"

    def test_ctmc_route_refuses_deterministic_nets(self):
        net = build_rejuvenation_net(PerceptionParameters.six_version_defaults())
        with cache_override(enabled=False):
            with pytest.raises(UnsupportedModelError, match="deterministic"):
                solve_steady_state(net, method="ctmc")

    def test_forced_mrgp_result_is_cached_separately(self, tmp_path):
        """method= is part of the cache key: no cross-route aliasing."""
        net = build_no_rejuvenation_net(
            PerceptionParameters.four_version_defaults()
        )
        with cache_override(enabled=True, directory=tmp_path) as cache:
            first = solve_steady_state(net, method="ctmc")
            second = solve_steady_state(net, method="mrgp")
            assert first.method == "ctmc"
            assert second.method == "mrgp"
            assert cache.stats()["misses"] == 2
