"""Fixtures for the engine differential harness."""

from __future__ import annotations

import pytest

from repro.engine import cache_override
from repro.experiments.registry import run_experiment


@pytest.fixture(scope="module")
def baseline_render():
    """Lazily computed serial, uncached render of each experiment.

    The uncached serial run is the reference semantics every other
    execution mode (cached, parallel) must reproduce byte-for-byte;
    computing it once per module keeps the harness at one reference
    pass over the registry.
    """
    renders: dict[str, str] = {}

    def get(experiment_id: str) -> str:
        if experiment_id not in renders:
            with cache_override(enabled=False):
                renders[experiment_id] = run_experiment(experiment_id).render(
                    plot=False
                )
        return renders[experiment_id]

    return get
