"""Multi-process hammer on the disk cache: one fingerprint, N writers.

The atomic publish path (temp file + ``os.replace``) must guarantee
that concurrent writers of the same key never leave a torn entry on
disk: every reader afterwards sees a complete, digest-valid pickle.
Exactly-once *execution* is the serving coalescer's contract; the disk
tier's contract is exactly-once *visibility* — last complete publish
wins, nothing corrupt is ever observable, and prevented overwrites are
counted.
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.engine.cache import SolverCache

#: A payload shaped like a real steady-state solution entry.
PAYLOAD = {"pi": [0.25, 0.75], "reward": 0.9917, "states": 1868}


def _entry_files(directory: Path) -> list[Path]:
    return sorted(Path(directory).glob("*/*.pkl"))


# ----------------------------------------------------------------------
# worker functions (module-level: spawn re-imports this module)
# ----------------------------------------------------------------------
def _barrier_put(args) -> dict:
    """Publish PAYLOAD under one shared key, synchronized to collide."""
    directory, key, barrier = args
    cache = SolverCache(directory=Path(directory))
    barrier.wait(timeout=30)
    cache.put(key, PAYLOAD)
    read_back = SolverCache(directory=Path(directory)).get(key)
    return {
        "value": read_back,
        "collisions": cache.collisions_prevented,
        "rejected": cache.rejected,
    }


def _solve_via_cache(directory) -> dict:
    """The real path: expected_reliability through a shared disk cache."""
    from repro.engine import cache_override
    from repro.engine.tasks import expected_reliability
    from repro.perception.parameters import PerceptionParameters

    with cache_override(enabled=True, directory=Path(directory)) as cache:
        value = expected_reliability(
            PerceptionParameters.four_version_defaults()
        )
        stats = cache.stats()
    return {"value": value, "stats": stats}


class TestConcurrentPublish:
    def test_n_writers_one_key_no_torn_entries(self, tmp_path):
        """8 processes publish the same key through one barrier window."""
        context = multiprocessing.get_context("spawn")
        barrier = context.Manager().Barrier(8)
        with ProcessPoolExecutor(max_workers=8, mp_context=context) as pool:
            outcomes = list(
                pool.map(
                    _barrier_put,
                    [(str(tmp_path), "deadbeef" * 8, barrier)] * 8,
                )
            )
        assert all(outcome["value"] == PAYLOAD for outcome in outcomes)
        assert all(outcome["rejected"] == 0 for outcome in outcomes)
        (entry,) = _entry_files(tmp_path)  # exactly one entry on disk
        # the surviving file is a complete, loadable publish
        fresh = SolverCache(directory=tmp_path)
        assert fresh.get("deadbeef" * 8) == PAYLOAD
        assert fresh.rejected == 0
        assert entry.stat().st_size > 0

    def test_hammer_real_solver_path(self, tmp_path):
        """N workers race the full solve→cache pipeline on one model."""
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=6, mp_context=context) as pool:
            outcomes = list(
                pool.map(_solve_via_cache, [str(tmp_path)] * 6)
            )
        values = {outcome["value"] for outcome in outcomes}
        assert len(values) == 1  # bit-identical across processes
        assert all(
            outcome["stats"]["rejected"] == 0 for outcome in outcomes
        )
        assert _entry_files(tmp_path), "the solve cached to disk"

        # a second wave is served from disk: no recompute, no rejections
        with ProcessPoolExecutor(max_workers=3, mp_context=context) as pool:
            second = list(pool.map(_solve_via_cache, [str(tmp_path)] * 3))
        assert all(outcome["value"] in values for outcome in second)
        assert all(outcome["stats"]["disk_hits"] >= 1 for outcome in second)
        assert all(outcome["stats"]["rejected"] == 0 for outcome in second)


class TestCollisionCounter:
    def test_overwrite_of_existing_entry_counts_collision(self, tmp_path):
        first = SolverCache(directory=tmp_path)
        second = SolverCache(directory=tmp_path)
        first.put("cafebabe" * 8, PAYLOAD)
        assert first.collisions_prevented == 0
        second.put("cafebabe" * 8, PAYLOAD)
        assert second.collisions_prevented == 1
        assert second.stats()["collisions_prevented"] == 1
        # the entry stays valid after the collided publish
        assert SolverCache(directory=tmp_path).get("cafebabe" * 8) == PAYLOAD

    def test_memory_only_cache_never_counts_collisions(self):
        cache = SolverCache()
        cache.put("k", 1)
        cache.put("k", 2)
        assert cache.collisions_prevented == 0

    def test_torn_write_is_invisible(self, tmp_path):
        """A half-written temp file never shadows the published entry."""
        cache = SolverCache(directory=tmp_path)
        cache.put("feedface" * 8, PAYLOAD)
        (entry,) = _entry_files(tmp_path)
        # simulate a crashed writer's leftover temp alongside the entry
        leftover = entry.parent / (entry.name + ".tmp-crashed")
        leftover.write_bytes(pickle.dumps(PAYLOAD)[: 10])
        fresh = SolverCache(directory=tmp_path)
        assert fresh.get("feedface" * 8) == PAYLOAD
        assert fresh.rejected == 0
