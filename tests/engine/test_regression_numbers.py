"""Satellite (b): pin the headline numbers to engine-produced reports.

Unlike ``tests/integration/test_paper_numbers.py`` (which calls the
evaluation pipeline directly), these regressions go through the full
experiment engine — registry dispatch, sweep plans, and the solver
cache — so a caching or reassembly bug that shifted any Table 2 /
Fig. 3 / Fig. 4 value would trip here even if the pipeline itself is
sound.
"""

from __future__ import annotations

import math

import pytest

from repro.engine import cache_override
from repro.experiments.registry import run_experiment

# Calibrated reproduction values (see tests/integration/test_paper_numbers.py).
REPRO_4V = 0.8223487
REPRO_6V = 0.9430077

# Fig. 3 safe-skip curve: (interval_s, E[R]) at the grid's anchor points.
FIG3_SAFE_SKIP = {
    200.0: 0.9455769,
    600.0: 0.9430077,
    3000.0: 0.8597921,
}

# Fig. 4a crossover: the 6v system overtakes between mttc 300 and 400 s.
FIG4A_ROWS = {
    300.0: (0.7607621, 0.7579736, "4v"),
    400.0: (0.7648030, 0.8007264, "6v"),
}

# Fig. 4d crossover: the 6v system wins only for p' >= 0.3.
FIG4D_ROWS = {
    0.2: (0.9794315, 0.9648685, "4v"),
    0.3: (0.9487418, 0.9585874, "6v"),
    0.5: (0.8223487, 0.9430077, "6v"),
}

TOLERANCE = 1e-6


@pytest.fixture(scope="module", params=["serial", "cached-parallel"])
def engine_report(request, tmp_path_factory):
    """Run an experiment through both engine execution modes."""
    mode = request.param
    reports: dict[str, object] = {}

    def get(experiment_id: str):
        if experiment_id not in reports:
            if mode == "serial":
                with cache_override(enabled=False):
                    reports[experiment_id] = run_experiment(experiment_id)
            else:
                directory = tmp_path_factory.mktemp("engine-regression")
                with cache_override(enabled=True, directory=directory):
                    reports[experiment_id] = run_experiment(
                        experiment_id, jobs=2
                    )
        return reports[experiment_id]

    return get


class TestTable2:
    def test_headline_values(self, engine_report):
        report = engine_report("table2-defaults")
        values = {row[0]: row[1] for row in report.rows}
        assert math.isclose(
            values["4-version (no rejuvenation)"], REPRO_4V, abs_tol=TOLERANCE
        )
        assert math.isclose(
            values["6-version (rejuvenation)"], REPRO_6V, abs_tol=TOLERANCE
        )


class TestFig3:
    def test_safe_skip_anchor_points(self, engine_report):
        report = engine_report("fig3")
        curve = {row[0]: row[1] for row in report.rows}
        for interval, expected in FIG3_SAFE_SKIP.items():
            assert math.isclose(curve[interval], expected, abs_tol=TOLERANCE)

    def test_table2_interval_matches_headline(self, engine_report):
        report = engine_report("fig3")
        curve = {row[0]: row[1] for row in report.rows}
        assert math.isclose(curve[600.0], REPRO_6V, abs_tol=TOLERANCE)


class TestFig4:
    def test_fig4a_crossover(self, engine_report):
        report = engine_report("fig4a")
        rows = {row[0]: (row[1], row[2], row[3]) for row in report.rows}
        for mttc, (four, six, winner) in FIG4A_ROWS.items():
            assert math.isclose(rows[mttc][0], four, abs_tol=TOLERANCE)
            assert math.isclose(rows[mttc][1], six, abs_tol=TOLERANCE)
            assert rows[mttc][2] == winner

    def test_fig4d_crossover(self, engine_report):
        report = engine_report("fig4d")
        rows = {row[0]: (row[1], row[2], row[3]) for row in report.rows}
        for p_prime, (four, six, winner) in FIG4D_ROWS.items():
            assert math.isclose(rows[p_prime][0], four, abs_tol=TOLERANCE)
            assert math.isclose(rows[p_prime][1], six, abs_tol=TOLERANCE)
            assert rows[p_prime][2] == winner

    def test_fig4d_default_point_is_table2(self, engine_report):
        report = engine_report("fig4d")
        rows = {row[0]: (row[1], row[2]) for row in report.rows}
        assert math.isclose(rows[0.5][0], REPRO_4V, abs_tol=TOLERANCE)
        assert math.isclose(rows[0.5][1], REPRO_6V, abs_tol=TOLERANCE)
