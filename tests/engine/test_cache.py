"""Unit and integration tests of the two-tier solver cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dspn.steady_state import solve_steady_state
from repro.engine import cache_override, configure_cache
from repro.engine.cache import SolverCache, active_cache, cache_settings
from repro.perception.no_rejuvenation import build_no_rejuvenation_net
from repro.perception.parameters import PerceptionParameters


def _entry_files(directory):
    return sorted(directory.glob("*/*.pkl"))


class TestInMemoryTier:
    def test_lru_evicts_oldest(self):
        cache = SolverCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert len(cache) == 2
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3

    def test_get_refreshes_recency(self):
        cache = SolverCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # 'a' is now most recent; 'b' must evict first
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_stats_count_hits_and_misses(self):
        cache = SolverCache()
        cache.get("missing")
        cache.put("k", 42)
        cache.get("k")
        assert cache.stats() == {
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "disk_hits": 0,
            "rejected": 0,
            "evictions": 0,
            "collisions_prevented": 0,
        }

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError, match="maxsize"):
            SolverCache(maxsize=0)


class TestDiskTier:
    def test_roundtrip_across_instances(self, tmp_path):
        SolverCache(directory=tmp_path).put("key", {"pi": [0.5, 0.5]})
        fresh = SolverCache(directory=tmp_path)
        assert fresh.get("key") == {"pi": [0.5, 0.5]}
        assert fresh.stats()["disk_hits"] == 1

    def test_entries_are_sharded_by_key_prefix(self, tmp_path):
        SolverCache(directory=tmp_path).put("abcdef", 1)
        assert (tmp_path / "ab" / "abcdef.pkl").is_file()

    def test_truncated_entry_is_rejected_and_deleted(self, tmp_path):
        cache = SolverCache(directory=tmp_path)
        cache.put("key", list(range(100)))
        (path,) = _entry_files(tmp_path)
        path.write_bytes(path.read_bytes()[:-10])
        fresh = SolverCache(directory=tmp_path)
        assert fresh.get("key") is None
        assert fresh.rejected == 1
        assert not path.exists()

    def test_clear_disk_removes_entries(self, tmp_path):
        cache = SolverCache(directory=tmp_path)
        cache.put("key", 1)
        cache.clear(disk=True)
        assert _entry_files(tmp_path) == []
        assert SolverCache(directory=tmp_path).get("key") is None


class TestCachePoisoningGuard:
    """Satellite (d): a mutated on-disk entry must never be served."""

    def test_flipped_payload_byte_forces_recompute(self, tmp_path):
        net = build_no_rejuvenation_net(
            PerceptionParameters.four_version_defaults()
        )
        with cache_override(enabled=True, directory=tmp_path):
            honest = solve_steady_state(net)
        (path,) = _entry_files(tmp_path)

        poisoned = bytearray(path.read_bytes())
        poisoned[-1] ^= 0xFF
        path.write_bytes(bytes(poisoned))

        with cache_override(enabled=True, directory=tmp_path) as cache:
            recomputed = solve_steady_state(net)
            assert cache.rejected == 1
            assert cache.disk_hits == 0
        np.testing.assert_array_equal(recomputed.pi, honest.pi)
        assert recomputed.markings == honest.markings

    def test_tampered_digest_line_forces_recompute(self, tmp_path):
        net = build_no_rejuvenation_net(
            PerceptionParameters.four_version_defaults()
        )
        with cache_override(enabled=True, directory=tmp_path):
            solve_steady_state(net)
        (path,) = _entry_files(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[0] = ord("0") if raw[0] != ord("0") else ord("1")
        path.write_bytes(bytes(raw))

        with cache_override(enabled=True, directory=tmp_path) as cache:
            solve_steady_state(net)
            assert cache.rejected == 1

    def test_rejected_entry_is_republished_good(self, tmp_path):
        net = build_no_rejuvenation_net(
            PerceptionParameters.four_version_defaults()
        )
        with cache_override(enabled=True, directory=tmp_path):
            solve_steady_state(net)
        (path,) = _entry_files(tmp_path)
        path.write_bytes(b"garbage")

        with cache_override(enabled=True, directory=tmp_path):
            solve_steady_state(net)  # rejects, recomputes, re-stores
        with cache_override(enabled=True, directory=tmp_path) as cache:
            solve_steady_state(net)
            assert cache.stats()["disk_hits"] == 1
            assert cache.stats()["rejected"] == 0


class TestProcessWidePolicy:
    def test_disabled_cache_is_none(self):
        with cache_override(enabled=False):
            assert active_cache() is None

    def test_override_restores_previous_policy(self, tmp_path):
        before = cache_settings()
        with cache_override(enabled=True, directory=tmp_path, maxsize=7):
            inside = cache_settings()
            assert inside["directory"] == str(tmp_path)
            assert inside["maxsize"] == 7
        assert cache_settings() == before

    def test_configure_resets_instance(self):
        with cache_override(enabled=True, directory=None):
            first = active_cache()
            configure_cache(maxsize=99)
            second = active_cache()
            assert second is not first
            assert second.maxsize == 99

    def test_solve_use_cache_false_bypasses(self, tmp_path):
        net = build_no_rejuvenation_net(
            PerceptionParameters.four_version_defaults()
        )
        with cache_override(enabled=True, directory=tmp_path) as cache:
            solve_steady_state(net, use_cache=False)
            assert cache.stats()["misses"] == 0
            assert _entry_files(tmp_path) == []

    def test_cached_pi_is_frozen(self):
        net = build_no_rejuvenation_net(
            PerceptionParameters.four_version_defaults()
        )
        with cache_override(enabled=True, directory=None):
            result = solve_steady_state(net)
            with pytest.raises((ValueError, RuntimeError)):
                result.pi[0] = 0.123
