"""End-to-end tests of the reliability service over real sockets."""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.serve import ReliabilityService, ServeConfig, result_digest
from repro.serve.client import request, stream_lines
from tests.obs.test_export import assert_valid_openmetrics
from tests.serve.conftest import running_service


def fast_config(**overrides) -> ServeConfig:
    defaults = dict(executor="thread", workers=4)
    defaults.update(overrides)
    return ServeConfig(**defaults)


class TestBasicEndpoints:
    def test_healthz_reports_version_and_occupancy(self):
        async def go():
            async with running_service(fast_config()) as (_, host, port):
                response = await request(host, port, "GET", "/healthz")
                assert response.status == 200
                body = response.json()
                assert body["status"] == "ok"
                assert body["queue_limit"] == 64
                from repro import __version__

                assert body["version"] == __version__

        asyncio.run(go())

    def test_solve_returns_result_fingerprint_digest_manifest(self):
        async def go():
            async with running_service(fast_config()) as (_, host, port):
                response = await request(
                    host, port, "POST", "/v1/solve", payload={"preset": "four"}
                )
                assert response.status == 200
                body = response.json()
                assert body["cache"] == "miss"
                assert 0.0 < body["result"]["expected_reliability"] < 1.0
                assert body["fingerprint"] == body["result"]["fingerprint"]
                assert body["digest"] == result_digest(body["result"])
                assert body["manifest"]["experiment"] == "serve"

        asyncio.run(go())

    def test_second_identical_request_hits_result_cache(self):
        async def go():
            async with running_service(fast_config()) as (_, host, port):
                first = await request(
                    host, port, "POST", "/v1/solve", payload={"preset": "four"}
                )
                second = await request(
                    host, port, "POST", "/v1/solve", payload={"preset": "four"}
                )
                assert first.json()["cache"] == "miss"
                assert second.json()["cache"] == "hit"
                assert second.json()["digest"] == first.json()["digest"]

        asyncio.run(go())

    def test_reward_only_parameter_change_is_not_a_cache_hit(self):
        # p changes E[R] through the Eq. 1 reward without touching the
        # net, so the result cache must distinguish the two specs.
        async def go():
            async with running_service(fast_config()) as (_, host, port):
                low = await request(
                    host, port, "POST", "/v1/solve",
                    payload={"preset": "six", "p": 0.01},
                )
                high = await request(
                    host, port, "POST", "/v1/solve",
                    payload={"preset": "six", "p": 0.14},
                )
                assert low.json()["cache"] == "miss"
                assert high.json()["cache"] == "miss"
                assert high.json()["fingerprint"] == low.json()["fingerprint"]
                a = low.json()["result"]["expected_reliability"]
                b = high.json()["result"]["expected_reliability"]
                assert a > b  # more accurate modules -> higher E[R]

        asyncio.run(go())

    def test_verify_endpoint_returns_certificate(self):
        async def go():
            async with running_service(fast_config()) as (_, host, port):
                response = await request(
                    host, port, "POST", "/v1/verify", payload={"preset": "four"}
                )
                assert response.status == 200
                result = response.json()["result"]
                assert result["lint"]["ok"]
                assert result["certificate"]["passed"]

        asyncio.run(go())

    def test_routing_errors(self):
        async def go():
            async with running_service(fast_config()) as (_, host, port):
                cases = [
                    ("GET", "/nowhere", None, 404),
                    ("GET", "/v1/solve", None, 405),
                    ("POST", "/healthz", None, 405),
                    ("POST", "/metrics", None, 405),
                    ("POST", "/v1/solve", {"bogus": 1}, 400),
                    ("POST", "/v1/solve", {}, 400),
                    ("GET", "/v1/jobs/job-999999", None, 404),
                ]
                for method, path, payload, expected in cases:
                    response = await request(
                        host, port, method, path, payload=payload
                    )
                    assert response.status == expected, (method, path)

        asyncio.run(go())

    def test_metrics_is_valid_openmetrics(self):
        async def go():
            async with running_service(fast_config()) as (_, host, port):
                await request(
                    host, port, "POST", "/v1/solve", payload={"preset": "four"}
                )
                response = await request(host, port, "GET", "/metrics")
                assert response.status == 200
                assert response.headers["content-type"].startswith(
                    "application/openmetrics-text"
                )
                families = assert_valid_openmetrics(response.body.decode())
                assert families["repro_serve_requests"] == "counter"
                assert families["repro_serve_solve_executed"] == "counter"
                assert families["repro_serve_request_seconds"] == "summary"

        asyncio.run(go())


class TestCoalescing:
    def test_identical_inflight_requests_solve_once(self):
        """The tentpole invariant: k identical in-flight fingerprints
        produce exactly one executed solve."""
        release = threading.Event()
        calls = []

        def slow_worker(spec):
            calls.append(spec)
            release.wait(timeout=10.0)
            return {"expected_reliability": 0.5, "fingerprint": "f" * 64}

        async def go():
            async with running_service(
                fast_config(), workers_table={"solve": slow_worker}
            ) as (service, host, port):
                tasks = [
                    asyncio.create_task(
                        request(
                            host,
                            port,
                            "POST",
                            "/v1/solve",
                            payload={"preset": "four"},
                        )
                    )
                    for _ in range(12)
                ]
                while not calls:  # leader reached the worker
                    await asyncio.sleep(0.01)
                release.set()
                responses = await asyncio.gather(*tasks)
                sources = sorted(r.json()["cache"] for r in responses)
                assert len(calls) == 1
                assert sources.count("miss") == 1
                assert sources.count("coalesced") == 11
                counters = {
                    name: metric.value
                    for name, metric in service.registry.counters.items()
                }
                assert counters["serve.solve.executed"] == 1
                assert counters["serve.coalesced"] == 11

        asyncio.run(go())

    def test_different_specs_do_not_coalesce(self):
        async def go():
            async with running_service(fast_config()) as (_, host, port):
                responses = await asyncio.gather(
                    request(
                        host, port, "POST", "/v1/solve",
                        payload={"preset": "four"},
                    ),
                    request(
                        host, port, "POST", "/v1/solve",
                        payload={"preset": "four", "mttc": 777.0},
                    ),
                )
                fingerprints = {r.json()["fingerprint"] for r in responses}
                assert len(fingerprints) == 2

        asyncio.run(go())

    def test_solve_and_verify_do_not_share_results(self):
        async def go():
            async with running_service(fast_config()) as (_, host, port):
                solve = await request(
                    host, port, "POST", "/v1/solve", payload={"preset": "four"}
                )
                verify = await request(
                    host, port, "POST", "/v1/verify",
                    payload={"preset": "four"},
                )
                assert solve.json()["cache"] == "miss"
                # same fingerprint, but a different kind: its own miss
                assert verify.json()["cache"] == "miss"
                assert "certificate" in verify.json()["result"]

        asyncio.run(go())


class TestBackPressure:
    def test_queue_limit_answers_503_with_retry_after(self):
        release = threading.Event()

        def stuck_worker(spec):
            release.wait(timeout=10.0)
            return {"value": 1}

        async def go():
            async with running_service(
                fast_config(queue_limit=1, workers=1),
                workers_table={"solve": stuck_worker},
            ) as (_, host, port):
                first = asyncio.create_task(
                    request(
                        host, port, "POST", "/v1/solve",
                        payload={"preset": "four"},
                    )
                )
                await asyncio.sleep(0.05)  # the leader occupies the queue
                overflow = await request(
                    host, port, "POST", "/v1/solve",
                    payload={"preset": "six"},
                )
                assert overflow.status == 503
                # a real, parseable back-off hint: header and body agree
                assert float(overflow.headers["retry-after"]) > 0
                assert overflow.json()["retry_after"] == pytest.approx(
                    float(overflow.headers["retry-after"]), abs=1e-3
                )
                # identical work still coalesces instead of 503ing
                joined = asyncio.create_task(
                    request(
                        host, port, "POST", "/v1/solve",
                        payload={"preset": "four"},
                    )
                )
                await asyncio.sleep(0.05)
                release.set()
                assert (await first).json()["cache"] == "miss"
                assert (await joined).json()["cache"] == "coalesced"

        asyncio.run(go())

    def test_rate_limit_answers_429(self):
        async def go():
            config = fast_config(rate=0.001, burst=1)
            async with running_service(config) as (_, host, port):
                headers = {"X-Client-Id": "greedy"}
                first = await request(
                    host, port, "POST", "/v1/solve",
                    payload={"preset": "four"}, headers=headers,
                )
                second = await request(
                    host, port, "POST", "/v1/solve",
                    payload={"preset": "four"}, headers=headers,
                )
                assert first.status == 200
                assert second.status == 429
                assert float(second.headers["retry-after"]) > 0
                assert second.json()["retry_after"] == pytest.approx(
                    float(second.headers["retry-after"]), abs=1e-3
                )
                # an unrelated client is not punished
                other = await request(
                    host, port, "POST", "/v1/solve",
                    payload={"preset": "four"},
                    headers={"X-Client-Id": "patient"},
                )
                assert other.status == 200

        asyncio.run(go())


class TestSweepJobs:
    def test_sweep_runs_to_done_with_event_stream(self):
        async def go():
            async with running_service(fast_config()) as (_, host, port):
                accepted = await request(
                    host, port, "POST", "/v1/sweep",
                    payload={
                        "preset": "four",
                        "parameter": "mttc",
                        "values": [100.0, 500.0],
                    },
                )
                assert accepted.status == 202
                ticket = accepted.json()
                assert ticket["poll"] == f"/v1/jobs/{ticket['job']}"

                events = []
                async for line in stream_lines(
                    host, port, ticket["events"]
                ):
                    events.append(json.loads(line))
                kinds = [event["event"] for event in events]
                assert kinds[0] == "job.start"
                assert kinds[-1] == "job.done"
                assert kinds.count("sweep.point.done") == 2

                final = await request(host, port, "GET", ticket["poll"])
                body = final.json()
                assert body["status"] == "done"
                result = body["result"]
                assert result["parameter"] == "mttc"
                assert len(result["reliabilities"]) == 2
                assert result["argmax"]["value"] in result["values"]

        asyncio.run(go())

    def test_sweep_snapshot_stream_with_follow_0(self):
        async def go():
            async with running_service(fast_config()) as (_, host, port):
                accepted = await request(
                    host, port, "POST", "/v1/sweep",
                    payload={
                        "preset": "four",
                        "parameter": "mttc",
                        "values": [100.0],
                    },
                )
                ticket = accepted.json()
                # poll until done, then snapshot the event log
                for _ in range(200):
                    status = await request(host, port, "GET", ticket["poll"])
                    if status.json()["status"] == "done":
                        break
                    await asyncio.sleep(0.02)
                snapshot = await request(
                    host, port, "GET", ticket["events"] + "?follow=0"
                )
                assert snapshot.status == 200
                lines = snapshot.body.decode().splitlines()
                assert json.loads(lines[-1])["event"] == "job.done"

        asyncio.run(go())

    def test_sweep_validation_errors(self):
        async def go():
            async with running_service(fast_config()) as (_, host, port):
                cases = [
                    ({"preset": "four"}, "parameter"),
                    (
                        {"preset": "four", "parameter": "bogus",
                         "values": [1.0]},
                        "parameter",
                    ),
                    (
                        {"preset": "four", "parameter": "mttc", "values": []},
                        "values",
                    ),
                    (
                        {"preset": "four", "parameter": "mttc",
                         "values": ["x"]},
                        "values",
                    ),
                    (
                        {"preset": "nope", "parameter": "mttc",
                         "values": [1.0]},
                        "preset",
                    ),
                ]
                for payload, needle in cases:
                    response = await request(
                        host, port, "POST", "/v1/sweep", payload=payload
                    )
                    assert response.status == 400, payload
                    assert needle in response.json()["error"]

        asyncio.run(go())

    def test_max_jobs_answers_503(self):
        release = threading.Event()

        def stuck_worker(spec):
            release.wait(timeout=10.0)
            return {"expected_reliability": 0.5, "fingerprint": "f" * 64}

        async def go():
            async with running_service(
                fast_config(max_jobs=1),
                workers_table={"solve": stuck_worker},
            ) as (_, host, port):
                payload = {
                    "preset": "four",
                    "parameter": "mttc",
                    "values": [100.0],
                }
                first = await request(
                    host, port, "POST", "/v1/sweep", payload=payload
                )
                assert first.status == 202
                second = await request(
                    host, port, "POST", "/v1/sweep", payload=payload
                )
                assert second.status == 503
                assert float(second.headers["retry-after"]) >= 1.0
                assert second.json()["retry_after"] == pytest.approx(
                    float(second.headers["retry-after"]), abs=1e-3
                )
                release.set()

        asyncio.run(go())


class TestConfig:
    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="executor"):
            ServeConfig(executor="fibers")

    def test_rejects_bad_queue_limit(self):
        with pytest.raises(ValueError, match="queue_limit"):
            ServeConfig(queue_limit=0)

    def test_events_file_records_serve_stream(self, tmp_path):
        events_path = tmp_path / "serve-events.jsonl"

        async def go():
            config = fast_config(events=str(events_path))
            async with running_service(config) as (service, host, port):
                await request(
                    host, port, "POST", "/v1/solve", payload={"preset": "four"}
                )
                accepted = await request(
                    host, port, "POST", "/v1/sweep",
                    payload={
                        "preset": "four",
                        "parameter": "mttc",
                        "values": [100.0],
                    },
                )
                job = service.jobs.get(accepted.json()["job"])
                for _ in range(500):
                    if job.finished:
                        break
                    await asyncio.sleep(0.01)

        asyncio.run(go())
        kinds = [
            json.loads(line)["event"]
            for line in events_path.read_text().splitlines()
        ]
        assert "serve.start" in kinds
        assert "serve.solve.done" in kinds
        assert "serve.miss" in kinds
        # job lifecycle events reach the file too (what `repro top
        # --events` renders its jobs row from)
        assert "job.start" in kinds
        assert "sweep.point.done" in kinds
        assert "job.done" in kinds


class TestEventRingEndpoint:
    def test_events_snapshot_returns_ring_contents(self):
        async def go():
            async with running_service(fast_config()) as (_, host, port):
                await request(
                    host, port, "POST", "/v1/solve", payload={"preset": "four"}
                )
                snapshot = await request(
                    host, port, "GET", "/events?follow=0"
                )
                assert snapshot.status == 200
                assert snapshot.headers["content-type"].startswith(
                    "application/jsonl"
                )
                events = [
                    json.loads(line)
                    for line in snapshot.body.decode().splitlines()
                ]
                kinds = [event["event"] for event in events]
                assert "serve.start" in kinds
                assert "serve.miss" in kinds
                assert all("ts" in event for event in events)

        asyncio.run(go())

    def test_events_tail_follows_live_and_ends_at_shutdown(self):
        lines: list[str] = []

        async def go():
            async with running_service(fast_config()) as (_, host, port):

                async def tail():
                    async for line in stream_lines(host, port, "/events"):
                        lines.append(line)

                task = asyncio.create_task(tail())
                await asyncio.sleep(0.05)  # the tail is connected
                await request(
                    host, port, "POST", "/v1/solve", payload={"preset": "four"}
                )
                await asyncio.sleep(0.05)  # the events reached the tail
            # leaving the context stops the service, which closes the
            # ring, which must end the tail instead of hanging it
            await asyncio.wait_for(task, timeout=5.0)

        asyncio.run(go())
        kinds = [json.loads(line)["event"] for line in lines]
        assert "serve.miss" in kinds
        assert "serve.solve.done" in kinds

    def test_events_endpoint_is_get_only(self):
        async def go():
            async with running_service(fast_config()) as (_, host, port):
                response = await request(
                    host, port, "POST", "/events", payload={}
                )
                assert response.status == 405

        asyncio.run(go())


class TestEndpointHistograms:
    def test_metrics_split_latency_by_endpoint_and_phase(self):
        async def go():
            async with running_service(fast_config()) as (_, host, port):
                await request(
                    host, port, "POST", "/v1/solve", payload={"preset": "four"}
                )
                await request(host, port, "GET", "/healthz")
                response = await request(host, port, "GET", "/metrics")
                text = response.body.decode()
                families = assert_valid_openmetrics(text)
                # per-endpoint SLO histograms next to the global one
                assert families["repro_serve_endpoint_solve_seconds"] == (
                    "summary"
                )
                assert families["repro_serve_endpoint_healthz_seconds"] == (
                    "summary"
                )
                # queue wait vs compute, separately accounted
                assert families["repro_serve_solve_queue_seconds"] == "summary"
                assert (
                    families["repro_serve_solve_compute_seconds"] == "summary"
                )
                # p95 joined the exported quantile bounds
                assert 'repro_serve_request_seconds{quantile="0.95"}' in text

        asyncio.run(go())


class TestEventStreamIsolation:
    def test_concurrent_job_tails_never_interleave(self):
        """Events from concurrent sweep jobs A and B must never leak
        into each other's ``/v1/jobs/{id}/events`` tails."""
        a_may_finish = threading.Event()

        def worker(spec):
            if spec["mttc"] < 150.0:  # job A's point: outlive all of B
                a_may_finish.wait(timeout=10.0)
            return {"expected_reliability": 0.5, "fingerprint": "f" * 64}

        async def tail(host, port, path):
            events = []
            async for line in stream_lines(host, port, path):
                events.append(json.loads(line))
            return events

        async def go():
            async with running_service(
                fast_config(), workers_table={"solve": worker}
            ) as (_, host, port):
                first = await request(
                    host, port, "POST", "/v1/sweep",
                    payload={
                        "preset": "four",
                        "parameter": "mttc",
                        "values": [100.0],
                    },
                )
                second = await request(
                    host, port, "POST", "/v1/sweep",
                    payload={
                        "preset": "four",
                        "parameter": "mttc",
                        "values": [200.0, 300.0],
                    },
                )
                job_a = first.json()
                job_b = second.json()
                tails = [
                    asyncio.create_task(tail(host, port, job_a["events"])),
                    asyncio.create_task(tail(host, port, job_b["events"])),
                ]
                # B runs to completion while A is still in flight...
                events_b = await asyncio.wait_for(tails[1], timeout=10.0)
                a_may_finish.set()
                events_a = await asyncio.wait_for(tails[0], timeout=10.0)

                for job, events, points in (
                    (job_a["job"], events_a, 1),
                    (job_b["job"], events_b, 2),
                ):
                    assert events, f"empty tail for {job}"
                    # purity: every event in the tail belongs to the job
                    assert {event["job"] for event in events} == {job}
                    kinds = [event["event"] for event in events]
                    assert kinds[0] == "job.start"
                    assert kinds[-1] == "job.done"
                    assert kinds.count("sweep.point.done") == points
                    # lifecycle order survived the interleaving
                    assert kinds.index("job.start") < kinds.index(
                        "sweep.point.done"
                    )

        asyncio.run(go())
