"""EventRing edge cases: overflow cursors, empty snapshots, close wakeups.

The ring's contract is that cursors are *absolute* sequence numbers:
eviction of old entries must never renumber what a follower sees, an
empty ring must answer snapshots without blocking, and closing the
ring must wake anyone parked in ``wait()`` — the paths a normally-busy
server never exercises.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.app import EventRing, ServeConfig
from repro.serve.http import Request
from tests.serve.conftest import running_service


def _event(index: int) -> dict:
    return {"event": "serve.test", "index": index}


class TestCursorPastOverflow:
    def test_since_skips_evicted_entries_without_renumbering(self):
        ring = EventRing(limit=4)
        for index in range(10):  # entries 1..10; only 7..10 retained
            ring.append(_event(index))
        fresh = ring.since(0)
        assert [seq for seq, _ in fresh] == [7, 8, 9, 10]
        assert [event["index"] for _, event in fresh] == [6, 7, 8, 9]

    def test_cursor_inside_the_evicted_range_yields_whats_left(self):
        ring = EventRing(limit=4)
        for index in range(10):
            ring.append(_event(index))
        # cursor 5 points at an evicted entry: the follower lost 6 and 7
        # but resumes at the oldest retained seq, with no duplicates
        assert [seq for seq, _ in ring.since(5)] == [7, 8, 9, 10]

    def test_cursor_beyond_the_head_returns_nothing(self):
        ring = EventRing(limit=4)
        for index in range(10):
            ring.append(_event(index))
        assert ring.since(10) == []
        assert ring.since(9999) == []

    def test_sequence_numbers_survive_overflow_monotonically(self):
        ring = EventRing(limit=2)
        for index in range(100):
            ring.append(_event(index))
        (a, _), (b, _) = ring.since(0)
        assert (a, b) == (99, 100)


class TestEmptyRingSnapshot:
    def test_empty_snapshot_is_empty_list(self):
        assert EventRing().snapshot() == []

    def test_follow_0_on_a_fresh_server_returns_empty_body(self):
        """``GET /events?follow=0`` on a ring holding nothing must
        answer immediately with zero JSONL lines, not block."""

        async def go():
            config = ServeConfig(executor="thread", workers=1, watch=False)
            async with running_service(config) as (service, host, port):
                service.ring = EventRing()  # discard boot events
                request = Request(
                    method="GET",
                    path="/events",
                    query={"follow": "0"},
                    headers={},
                    body=b"",
                )
                response = await service._dispatch(request)
                assert response.status == 200
                assert response.body == b""

        asyncio.run(go())

    def test_nonempty_follow_0_snapshot_is_parseable_jsonl(self):
        async def go():
            config = ServeConfig(executor="thread", workers=1, watch=False)
            async with running_service(config) as (service, host, port):
                request = Request(
                    method="GET",
                    path="/events",
                    query={"follow": "0"},
                    headers={},
                    body=b"",
                )
                response = await service._dispatch(request)
                lines = response.body.decode().splitlines()
                assert lines, "boot should have ringed serve.start"
                events = [json.loads(line) for line in lines]
                assert events[0]["event"] == "serve.start"

        asyncio.run(go())


class TestWaiterWakeupOnClose:
    def test_close_wakes_a_parked_waiter_before_its_timeout(self):
        async def go():
            ring = EventRing()

            async def park():
                return await ring.wait(0, timeout=30.0)

            waiter = asyncio.create_task(park())
            await asyncio.sleep(0)  # let the waiter reach the condition
            assert ring._waiters == 1
            ring.close()
            fresh = await asyncio.wait_for(waiter, timeout=5.0)
            assert fresh == []
            assert ring.closed

        asyncio.run(go())

    def test_wait_on_a_closed_ring_returns_immediately(self):
        async def go():
            ring = EventRing()
            ring.close()
            assert await asyncio.wait_for(ring.wait(0), timeout=1.0) == []

        asyncio.run(go())

    def test_append_wakes_a_parked_waiter_with_the_new_entry(self):
        async def go():
            ring = EventRing()

            async def park():
                return await ring.wait(0, timeout=30.0)

            waiter = asyncio.create_task(park())
            await asyncio.sleep(0)
            ring.append(_event(0))
            fresh = await asyncio.wait_for(waiter, timeout=5.0)
            assert [seq for seq, _ in fresh] == [1]

        asyncio.run(go())

    def test_notify_without_waiters_is_a_no_op_outside_a_loop(self):
        ring = EventRing()
        ring.append(_event(0))  # no running loop, no waiters: no crash
        ring.close()
        assert ring.closed and len(ring.since(0)) == 1


def test_limit_must_be_positive():
    with pytest.raises(ValueError, match="limit"):
        EventRing(limit=0)
