"""The load harness against an in-process service."""

from __future__ import annotations

import asyncio
from pathlib import Path

import pytest

from repro.serve import ServeConfig, coalesce_proof, run_load
from tests.serve.conftest import running_service


def fast_config(**overrides) -> ServeConfig:
    defaults = dict(executor="thread", workers=4)
    defaults.update(overrides)
    return ServeConfig(**defaults)


class TestRunLoad:
    def test_closed_loop_smoke(self):
        async def go():
            async with running_service(fast_config()) as (_, host, port):
                result = await run_load(
                    host, port, requests=60, concurrency=8
                )
                assert result.requests == 60
                assert result.errors == 0
                assert result.digest_failures == 0
                assert result.throughput > 0
                # warmed up: the measured window is all cache hits
                assert result.by_cache == {"hit": 60}
                assert result.latency.summary()["count"] == 60

        asyncio.run(go())

    def test_open_loop_paces_arrivals(self):
        async def go():
            async with running_service(fast_config()) as (_, host, port):
                result = await run_load(
                    host,
                    port,
                    requests=20,
                    concurrency=4,
                    mode="open",
                    rate=200.0,
                )
                assert result.errors == 0
                # 20 arrivals at 200/s occupy at least ~95 ms
                assert result.seconds >= 0.09

        asyncio.run(go())

    def test_as_dict_reports_quantiles(self):
        async def go():
            async with running_service(fast_config()) as (_, host, port):
                result = await run_load(host, port, requests=10, concurrency=2)
                summary = result.as_dict()
                latency = summary["latency"]
                assert latency["p50"] <= latency["p90"] <= latency["p99"]
                assert summary["throughput"] == pytest.approx(
                    result.throughput
                )

        asyncio.run(go())

    def test_mode_validation(self):
        async def go():
            with pytest.raises(ValueError, match="mode"):
                await run_load(
                    "127.0.0.1", 1, requests=1, mode="sideways"
                )
            with pytest.raises(ValueError, match="rate"):
                await run_load("127.0.0.1", 1, requests=1, mode="open")

        asyncio.run(go())


class TestCoalesceProof:
    def test_proof_holds_on_cold_fingerprint(self):
        async def go():
            async with running_service(fast_config()) as (service, host, port):
                tally = await coalesce_proof(host, port, k=25)
                assert tally["ok"], tally
                assert tally["by_cache"]["miss"] == 1
                joined = tally["by_cache"].get("coalesced", 0) + tally[
                    "by_cache"
                ].get("hit", 0)
                assert joined == 24
                executed = service.registry.counters[
                    "serve.solve.executed"
                ].value
                assert executed == 1

        asyncio.run(go())

    def test_proof_spec_is_cold_after_default_load(self):
        """The default proof spec must not collide with DEFAULT_SPEC."""

        async def go():
            async with running_service(fast_config()) as (service, host, port):
                await run_load(host, port, requests=10, concurrency=2)
                before = service.registry.counters[
                    "serve.solve.executed"
                ].value
                tally = await coalesce_proof(host, port, k=10)
                after = service.registry.counters[
                    "serve.solve.executed"
                ].value
                assert tally["ok"], tally
                assert after - before == 1

        asyncio.run(go())


class TestBenchmarksShim:
    """``benchmarks/loadgen.py`` is deprecated but must stay faithful."""

    SHIM = Path(__file__).resolve().parents[2] / "benchmarks" / "loadgen.py"

    def _load_shim(self):
        import importlib.util
        import uuid

        spec = importlib.util.spec_from_file_location(
            f"loadgen_shim_{uuid.uuid4().hex}", self.SHIM
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_shim_warns_deprecation_pointing_at_the_package(self):
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            self._load_shim()
        deprecations = [
            warning
            for warning in caught
            if issubclass(warning.category, DeprecationWarning)
        ]
        assert deprecations, "shim import must emit DeprecationWarning"
        assert "repro.serve.loadgen" in str(deprecations[0].message)

    def test_shim_main_is_the_packaged_main(self):
        import warnings

        from repro.serve import loadgen

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            module = self._load_shim()
        assert module.main is loadgen.main
