"""``GET /trace/{id}``: request-scoped Chrome traces from the service.

Covers the tentpole acceptance criteria: a sweep job's trace is
schema-valid Chrome trace JSON with one worker lane per point plus the
main lane, cache annotations on point spans, the RunManifest under
``otherData`` — and under a :class:`ManualClock` the response is
byte-stable across two independent service lifetimes.
"""

from __future__ import annotations

import asyncio

from repro.engine.cache import cache_override
from repro.obs.clock import ManualClock, use_clock
from repro.serve.client import request
from tests.obs.test_export import assert_valid_chrome_trace
from tests.serve.conftest import running_service
from tests.serve.test_app import fast_config


async def _finished_sweep(service, host, port, *, values):
    """POST a sweep and wait (in-process, no extra requests) for done."""
    accepted = await request(
        host, port, "POST", "/v1/sweep",
        payload={"preset": "four", "parameter": "mttc", "values": values},
    )
    assert accepted.status == 202
    ticket = accepted.json()
    assert ticket["trace"] == f"/trace/{ticket['job']}"
    job = service.jobs.get(ticket["job"])
    for _ in range(500):
        if job.finished:
            break
        await asyncio.sleep(0.01)
    assert job.finished
    return ticket


class TestSweepTraces:
    def test_sweep_trace_is_schema_valid_with_worker_lanes(self):
        async def go():
            async with running_service(fast_config()) as (
                service, host, port,
            ):
                ticket = await _finished_sweep(
                    service, host, port, values=[100.0, 500.0]
                )
                response = await request(
                    host, port, "GET", ticket["trace"]
                )
                assert response.status == 200
                payload = response.json()
                assert_valid_chrome_trace(payload)

                events = payload["traceEvents"]
                spans = [e for e in events if e["ph"] == "X"]
                lanes = {e["pid"] for e in spans}
                assert lanes == {0, 1, 2}  # main + one lane per point
                labels = {
                    e["pid"]: e["args"]["name"]
                    for e in events
                    if e["ph"] == "M"
                }
                assert labels[0] == "main"
                assert labels[1] == "sweep-worker-1"
                assert labels[2] == "sweep-worker-2"

                root = next(e for e in spans if e["name"] == "serve.sweep")
                assert root["args"]["parameter"] == "mttc"
                assert root["args"]["points"] == 2

                points = [
                    e for e in spans if e["name"] == "serve.sweep.point"
                ]
                assert sorted(p["args"]["index"] for p in points) == [0, 1]
                assert {p["args"]["value"] for p in points} == {100.0, 500.0}
                # cold points: executed solves annotated as cache misses
                assert all(p["args"]["cache"] == "miss" for p in points)
                assert all(
                    "queue_seconds" in p["args"]
                    and "compute_seconds" in p["args"]
                    for p in points
                )

                # worker-captured spans rode back on the point's lane
                names = {e["name"] for e in spans}
                assert "serve.compute" in names
                assert "engine.expected_reliability" in names
                compute = next(
                    e for e in spans if e["name"] == "serve.compute"
                )
                assert compute["pid"] in (1, 2)

                assert payload["otherData"]["manifest"] == service.manifest

        asyncio.run(go())

    def test_cached_sweep_points_render_as_annotated_zero_spans(self):
        async def go():
            async with running_service(fast_config()) as (
                service, host, port,
            ):
                # same value twice: the second point is served by the
                # result cache (or coalescing) and carries no records
                ticket = await _finished_sweep(
                    service, host, port, values=[250.0, 250.0]
                )
                response = await request(host, port, "GET", ticket["trace"])
                payload = response.json()
                assert_valid_chrome_trace(payload)
                points = [
                    e
                    for e in payload["traceEvents"]
                    if e["ph"] == "X" and e["name"] == "serve.sweep.point"
                ]
                caches = sorted(p["args"]["cache"] for p in points)
                assert caches[0] in ("coalesced", "hit")
                assert caches[1] == "miss"
                cheap = next(
                    p for p in points if p["args"]["cache"] != "miss"
                )
                assert cheap["dur"] == 0.0

        asyncio.run(go())

    def test_trace_bytes_are_stable_under_manual_clock(self):
        async def run_once() -> bytes:
            # workers=1 serializes the sweep points, so the shared
            # manual clock sees one deterministic sequence of reads;
            # the engine cache is disabled so a prior run's entries
            # cannot leak across service lifetimes
            async with running_service(
                fast_config(workers=1)
            ) as (service, host, port):
                ticket = await _finished_sweep(
                    service, host, port, values=[100.0, 500.0]
                )
                response = await request(host, port, "GET", ticket["trace"])
                assert response.status == 200
                return response.body

        def capture() -> bytes:
            with cache_override(enabled=False):
                with use_clock(ManualClock()):
                    return asyncio.run(run_once())

        first = capture()
        second = capture()
        assert first == second
        # and under the manual clock the stored unit is ticks
        import json

        payload = json.loads(first)
        assert_valid_chrome_trace(payload)
        assert {e["pid"] for e in payload["traceEvents"]} == {0, 1, 2}

    def test_refetching_a_trace_does_not_change_it(self):
        async def go():
            async with running_service(fast_config()) as (
                service, host, port,
            ):
                ticket = await _finished_sweep(
                    service, host, port, values=[100.0]
                )
                first = await request(host, port, "GET", ticket["trace"])
                second = await request(host, port, "GET", ticket["trace"])
                assert first.body == second.body

        asyncio.run(go())


class TestSolveTraces:
    def test_opt_in_solve_trace_roundtrip(self):
        async def go():
            async with running_service(fast_config()) as (
                service, host, port,
            ):
                plain = await request(
                    host, port, "POST", "/v1/solve",
                    payload={"preset": "four"},
                )
                assert "trace" not in plain.json()  # tracing is opt-in

                traced = await request(
                    host, port, "POST", "/v1/solve?trace=1",
                    payload={"preset": "six"},
                )
                body = traced.json()
                assert body["cache"] == "miss"
                assert body["trace"] == f"/trace/{body['request']}"

                response = await request(host, port, "GET", body["trace"])
                assert response.status == 200
                payload = response.json()
                assert_valid_chrome_trace(payload)
                spans = [
                    e for e in payload["traceEvents"] if e["ph"] == "X"
                ]
                names = {e["name"] for e in spans}
                assert {"serve.solve", "serve.solve.point"} <= names
                assert "serve.compute" in names
                point = next(
                    e for e in spans if e["name"] == "serve.solve.point"
                )
                assert point["args"]["cache"] == "miss"

        asyncio.run(go())

    def test_traced_cache_hit_is_annotated(self):
        async def go():
            async with running_service(fast_config()) as (
                service, host, port,
            ):
                await request(
                    host, port, "POST", "/v1/solve",
                    payload={"preset": "four"},
                )
                traced = await request(
                    host, port, "POST", "/v1/solve?trace=1",
                    payload={"preset": "four"},
                )
                body = traced.json()
                assert body["cache"] == "hit"
                response = await request(host, port, "GET", body["trace"])
                payload = response.json()
                assert_valid_chrome_trace(payload)
                point = next(
                    e
                    for e in payload["traceEvents"]
                    if e["ph"] == "X" and e["name"] == "serve.solve.point"
                )
                assert point["args"]["cache"] == "hit"
                assert point["dur"] == 0.0

        asyncio.run(go())


class TestTraceErrors:
    def test_unknown_trace_is_404(self):
        async def go():
            async with running_service(fast_config()) as (_, host, port):
                response = await request(
                    host, port, "GET", "/trace/nope"
                )
                assert response.status == 404

        asyncio.run(go())

    def test_known_job_without_trace_says_so(self):
        async def go():
            async with running_service(fast_config()) as (
                service, host, port,
            ):
                job = service.jobs.create("sweep", {})
                response = await request(
                    host, port, "GET", f"/trace/{job.id}"
                )
                assert response.status == 404
                assert "no trace yet" in response.json()["error"]

        asyncio.run(go())

    def test_trace_endpoint_is_get_only(self):
        async def go():
            async with running_service(fast_config()) as (_, host, port):
                response = await request(
                    host, port, "POST", "/trace/x", payload={}
                )
                assert response.status == 405

        asyncio.run(go())
