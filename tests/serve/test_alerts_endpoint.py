"""``GET /alerts``: the serve watcher's state over HTTP.

The service feeds every ring event through its :class:`Watcher`; slow
``serve.solve.done`` events burn the SLO budget, raised alerts come
back through the ring (visible to ``GET /events`` and ``repro top``)
and surface here with absolute cursors, while ``serve.alerts.*``
metrics land in ``/metrics``.
"""

from __future__ import annotations

import asyncio

from repro.serve.client import request
from tests.serve.conftest import running_service
from tests.serve.test_app import fast_config


def watch_config(**overrides):
    defaults = dict(
        executor="thread", workers=1, watch=True, slo_latency=0.1
    )
    defaults.update(overrides)
    return fast_config(**defaults)


def burn_slo(service, n=20, op="solve"):
    """Feed ``n`` slow solve events straight into the event path."""
    for index in range(n):
        service._forward_event(
            {
                "event": "serve.solve.done",
                "ts": float(index),
                "seconds": 5.0,
                "op": op,
            }
        )


class TestAlertsEndpoint:
    def test_watch_disabled_reports_enabled_false(self):
        async def go():
            config = watch_config(watch=False)
            async with running_service(config) as (_, host, port):
                response = await request(host, port, "GET", "/alerts")
                assert response.status == 200
                assert response.json() == {
                    "enabled": False,
                    "active": [],
                    "counts": {},
                    "events": [],
                    "cursor": 0,
                }

        asyncio.run(go())

    def test_quiet_watcher_reports_config_and_certificates(self):
        async def go():
            async with running_service(watch_config()) as (_, host, port):
                body = (await request(host, port, "GET", "/alerts")).json()
                assert body["enabled"] is True
                assert body["config"]["slo_latency"] == 0.1
                kinds = [c["kind"] for c in body["certificates"]]
                assert "slo-burn-rate" in kinds
                assert body["active"] == []
                assert body["counts"]["fired"] == 0
                assert body["events"] == [] and body["cursor"] == 0

        asyncio.run(go())

    def test_slow_requests_fire_a_page_visible_everywhere(self):
        async def go():
            async with running_service(watch_config()) as (
                service, host, port,
            ):
                burn_slo(service)
                body = (await request(host, port, "GET", "/alerts")).json()
                (alert,) = [
                    a for a in body["active"] if a["key"] == "slo:solve"
                ]
                assert alert["state"] == "firing"
                assert alert["severity"] == "page"
                assert body["counts"]["active"] == 1
                kinds = [e["event"] for e in body["events"]]
                assert "alert.firing" in kinds
                # the alert also rode the ring: GET /events sees it
                ring_kinds = [
                    e.get("event") for e in service.ring.snapshot()
                ]
                assert "alert.firing" in ring_kinds
                # and the metrics surface counted it
                metrics = (
                    await request(host, port, "GET", "/metrics")
                ).body.decode()
                assert "repro_serve_alerts_firing_total 1.0" in metrics
                assert "repro_serve_alerts_active 1.0" in metrics

        asyncio.run(go())

    def test_since_cursor_resumes_without_replay(self):
        async def go():
            async with running_service(watch_config()) as (
                service, host, port,
            ):
                burn_slo(service)
                first = (await request(host, port, "GET", "/alerts")).json()
                assert first["events"]
                cursor = first["cursor"]
                assert cursor == first["events"][-1]["seq"]
                second = (
                    await request(
                        host, port, "GET", f"/alerts?since={cursor}"
                    )
                ).json()
                assert second["events"] == []
                assert second["cursor"] == cursor
                # resolve by going quiet: much-later fast requests
                for index in range(50):
                    service._forward_event(
                        {
                            "event": "serve.solve.done",
                            "ts": 10000.0 + index,
                            "seconds": 0.001,
                            "op": "solve",
                        }
                    )
                third = (
                    await request(
                        host, port, "GET", f"/alerts?since={cursor}"
                    )
                ).json()
                kinds = [e["event"] for e in third["events"]]
                assert "alert.resolved" in kinds
                assert all(e["seq"] > cursor for e in third["events"])
                assert third["counts"]["active"] == 0

        asyncio.run(go())

    def test_bad_since_is_a_400(self):
        async def go():
            async with running_service(watch_config()) as (_, host, port):
                response = await request(
                    host, port, "GET", "/alerts?since=banana"
                )
                assert response.status == 400

        asyncio.run(go())

    def test_alerts_is_get_only(self):
        async def go():
            async with running_service(watch_config()) as (_, host, port):
                response = await request(host, port, "POST", "/alerts")
                assert response.status == 405

        asyncio.run(go())

    def test_manifest_carries_the_detector_certificates(self):
        async def go():
            async with running_service(watch_config()) as (service, _, __):
                kinds = [
                    c["kind"] for c in service.manifest["detectors"]
                ]
                assert "slo-burn-rate" in kinds

        asyncio.run(go())

    def test_per_op_keys_are_independent(self):
        async def go():
            async with running_service(watch_config()) as (
                service, host, port,
            ):
                burn_slo(service, op="solve")
                burn_slo(service, op="verify")
                body = (await request(host, port, "GET", "/alerts")).json()
                keys = [a["key"] for a in body["active"]]
                assert keys == ["slo:solve", "slo:verify"]  # sorted

        asyncio.run(go())
