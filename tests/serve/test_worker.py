"""Spec resolution, fingerprints, and the picklable workers."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.serve.worker import (
    SpecError,
    fingerprint_spec,
    resolve_spec,
    result_digest,
    solve_worker,
    verify_worker,
)


class TestResolveSpec:
    def test_presets_match_paper_defaults(self):
        four, _, _ = resolve_spec({"preset": "four"})
        six, _, _ = resolve_spec({"preset": "six"})
        assert (four.n_modules, four.rejuvenation) == (4, False)
        assert (six.n_modules, six.rejuvenation) == (6, True)

    def test_explicit_shape_and_overrides(self):
        parameters, max_states, method = resolve_spec(
            {
                "versions": 9,
                "f": 2,
                "r": 1,
                "rejuvenation": True,
                "mttc": 1234.5,
                "max_states": 50_000,
                "method": "ctmc",
            }
        )
        assert parameters.n_modules == 9
        assert parameters.mttc == 1234.5
        assert (max_states, method) == (50_000, "ctmc")

    def test_rejects_unknown_key(self):
        with pytest.raises(SpecError, match="unknown spec key 'mtcc'"):
            resolve_spec({"preset": "four", "mtcc": 1.0})

    def test_rejects_preset_plus_versions(self):
        with pytest.raises(SpecError, match="not both"):
            resolve_spec({"preset": "four", "versions": 4})

    def test_rejects_missing_shape(self):
        with pytest.raises(SpecError, match="preset"):
            resolve_spec({"mttc": 100.0})

    def test_rejects_unknown_preset(self):
        with pytest.raises(SpecError, match="unknown preset"):
            resolve_spec({"preset": "five"})

    def test_rejects_bad_method_and_max_states(self):
        with pytest.raises(SpecError, match="method"):
            resolve_spec({"preset": "four", "method": "magic"})
        with pytest.raises(SpecError, match="max_states"):
            resolve_spec({"preset": "four", "max_states": 0})

    def test_rejects_non_object_spec(self):
        with pytest.raises(SpecError, match="JSON object"):
            resolve_spec(["preset", "four"])

    def test_invalid_parameter_combination_is_spec_error(self):
        # n=4 violates the BFT floor for f=2, r=1 with rejuvenation.
        with pytest.raises(SpecError, match="invalid spec value"):
            resolve_spec(
                {"versions": 4, "f": 2, "r": 1, "rejuvenation": True}
            )


class TestFingerprints:
    def test_equivalent_specs_share_a_fingerprint(self):
        preset_fp, preset_key = fingerprint_spec({"preset": "four"})
        explicit_fp, explicit_key = fingerprint_spec(
            {"versions": 4, "f": 1, "r": 1}
        )
        assert preset_fp == explicit_fp
        assert preset_key == explicit_key

    def test_parameter_change_changes_fingerprint(self):
        base, _ = fingerprint_spec({"preset": "four"})
        tweaked, _ = fingerprint_spec({"preset": "four", "mttc": 99.0})
        assert base != tweaked

    def test_solver_settings_change_key_not_fingerprint(self):
        fp_a, key_a = fingerprint_spec({"preset": "four"})
        fp_b, key_b = fingerprint_spec(
            {"preset": "four", "max_states": 12_345}
        )
        assert fp_a == fp_b
        assert key_a != key_b

    def test_reward_parameters_change_key_not_fingerprint(self):
        # p/p_prime/alpha enter Eq. 1 through the reward, not the net:
        # the fingerprint (model identity) is shared but the cache key
        # must differ, or a cached E[R] for one p answers requests for
        # another.
        base_fp, base_key = fingerprint_spec({"preset": "six"})
        for tweak in ({"p": 0.14}, {"p_prime": 0.9}, {"alpha": 0.1}):
            fp, key = fingerprint_spec({"preset": "six", **tweak})
            assert fp == base_fp, tweak
            assert key != base_key, tweak

    def test_equivalent_reward_parameters_share_a_key(self):
        _, implicit = fingerprint_spec({"preset": "six"})
        _, explicit = fingerprint_spec(
            {"preset": "six", "p": 0.08, "p_prime": 0.5, "alpha": 0.5}
        )
        assert implicit == explicit


class TestResultDigest:
    def test_digest_is_canonical_json_sha256(self):
        result = {"b": 2, "a": 1}
        expected = hashlib.sha256(
            json.dumps(result, sort_keys=True, separators=(",", ":")).encode()
        ).hexdigest()
        assert result_digest(result) == expected

    def test_digest_is_key_order_independent(self):
        assert result_digest({"a": 1, "b": 2}) == result_digest(
            {"b": 2, "a": 1}
        )


class TestWorkers:
    def test_solve_worker_matches_engine_value(self):
        from repro.engine.tasks import expected_reliability
        from repro.perception.parameters import PerceptionParameters

        result = solve_worker({"preset": "four"})
        direct = expected_reliability(
            PerceptionParameters.four_version_defaults()
        )
        assert result["expected_reliability"] == pytest.approx(direct)
        assert result["n_modules"] == 4
        assert not result["rejuvenation"]
        assert len(result["fingerprint"]) == 64

    def test_verify_worker_reports_lint_and_certificate(self):
        result = verify_worker({"preset": "four"})
        assert result["lint"]["ok"]
        assert result["certificate"]["passed"]
        assert result["certificate"]["n_states"] > 0
        assert result["certificate"]["max_residual"] <= (
            result["certificate"]["tolerance"]
        )
