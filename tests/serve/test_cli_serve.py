"""The ``repro serve`` command and the ``--version`` flag."""

from __future__ import annotations

import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.cli import main

REPO = Path(__file__).resolve().parents[2]


class TestVersionFlag:
    def test_version_flag_prints_package_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"

    def test_version_matches_pyproject(self):
        pyproject = (REPO / "pyproject.toml").read_text()
        assert f'version = "{repro.__version__}"' in pyproject

    def test_version_is_single_sourced(self):
        # nothing but the resolver defines a literal version string
        source = (REPO / "src" / "repro" / "__init__.py").read_text()
        assert "_resolve_version" in source
        assert '__version__ = "' not in source


class TestServeCommand:
    def test_serve_help_lists_tunables(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--port", "--queue-limit", "--max-jobs", "--rate",
                     "--executor", "--events"):
            assert flag in out

    def test_serve_boots_answers_and_shuts_down(self):
        """Boot the real CLI in a subprocess, hit /healthz, kill it."""
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--executor", "thread", "--workers", "2"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        try:
            line = process.stdout.readline()
            assert "repro serve listening on http://" in line
            port = int(line.rsplit(":", 1)[1])
            deadline = time.monotonic() + 10
            payload = b""
            while time.monotonic() < deadline:
                try:
                    with socket.create_connection(
                        ("127.0.0.1", port), timeout=2
                    ) as sock:
                        sock.sendall(
                            b"GET /healthz HTTP/1.1\r\n"
                            b"Connection: close\r\n\r\n"
                        )
                        while chunk := sock.recv(4096):
                            payload += chunk
                    break
                except OSError:
                    time.sleep(0.1)
            assert b"200 OK" in payload
            assert b'"status": "ok"' in payload
        finally:
            process.terminate()
            process.wait(timeout=10)
