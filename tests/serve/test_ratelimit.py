"""Token-bucket admission control, driven by the manual clock."""

from __future__ import annotations

import pytest

from repro.obs.clock import ManualClock, use_clock
from repro.serve.ratelimit import RateLimiter, TokenBucket


class TestTokenBucket:
    def test_burst_then_deny(self):
        bucket = TokenBucket(rate=1.0, burst=2.0, now=0.0)
        assert bucket.try_acquire(now=0.0) == 0.0
        assert bucket.try_acquire(now=0.0) == 0.0
        retry = bucket.try_acquire(now=0.0)
        assert retry == pytest.approx(1.0)

    def test_refill_readmits(self):
        bucket = TokenBucket(rate=2.0, burst=1.0, now=0.0)
        assert bucket.try_acquire(now=0.0) == 0.0
        assert bucket.try_acquire(now=0.0) > 0.0
        # 0.5 s at 2 tokens/s refills the single-token bucket.
        assert bucket.try_acquire(now=0.5) == 0.0

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=3.0, now=0.0)
        for _ in range(3):
            assert bucket.try_acquire(now=100.0) == 0.0
        assert bucket.try_acquire(now=100.0) > 0.0

    def test_retry_after_scales_with_deficit(self):
        bucket = TokenBucket(rate=0.5, burst=1.0, now=0.0)
        bucket.try_acquire(now=0.0)
        assert bucket.try_acquire(now=0.0) == pytest.approx(2.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0.0, burst=1.0, now=0.0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0.0, now=0.0)


class TestRateLimiter:
    def test_zero_rate_disables(self):
        limiter = RateLimiter(0.0)
        assert not limiter.enabled
        for _ in range(1000):
            assert limiter.check("anyone") == 0.0

    def test_per_client_buckets_are_independent(self):
        with use_clock(ManualClock(step=1e-9)):
            limiter = RateLimiter(1.0, 1.0)
            assert limiter.check("a") == 0.0
            assert limiter.check("a") > 0.0
            assert limiter.check("b") == 0.0  # b has a fresh bucket

    def test_default_burst_is_twice_rate(self):
        limiter = RateLimiter(8.0)
        assert limiter.burst == 16.0

    def test_burst_floor_of_one(self):
        limiter = RateLimiter(0.1)
        assert limiter.burst == 1.0

    def test_eviction_forgets_least_recent_client(self):
        with use_clock(ManualClock(step=1e-9)):
            limiter = RateLimiter(1.0, 1.0, max_clients=2)
            assert limiter.check("a") == 0.0
            assert limiter.check("b") == 0.0
            assert limiter.check("c") == 0.0  # evicts a
            # a is re-admitted with a full (forgiving) bucket.
            assert limiter.check("a") == 0.0

    def test_manual_clock_refill(self):
        clock = ManualClock(step=1e-9)
        with use_clock(clock):
            limiter = RateLimiter(1.0, 1.0)
            assert limiter.check("a") == 0.0
            assert limiter.check("a") == pytest.approx(1.0, abs=1e-6)
            clock.tick(1.0)
            assert limiter.check("a") == 0.0
