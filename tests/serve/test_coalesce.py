"""Exactly-once semantics of the request coalescer."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.coalesce import Coalescer


def run(coroutine):
    return asyncio.run(coroutine)


class TestCoalescer:
    def test_single_caller_is_leader(self):
        async def go():
            coalescer = Coalescer()

            async def work():
                return 42

            value, coalesced = await coalescer.run("k", work)
            assert (value, coalesced) == (42, False)
            assert coalescer.leader_count() == 0

        run(go())

    def test_concurrent_identical_keys_run_factory_once(self):
        async def go():
            coalescer = Coalescer()
            calls = 0
            gate = asyncio.Event()

            async def work():
                nonlocal calls
                calls += 1
                await gate.wait()
                return "result"

            tasks = [
                asyncio.create_task(coalescer.run("k", work))
                for _ in range(50)
            ]
            await asyncio.sleep(0)  # all callers reach the coalescer
            assert coalescer.leader_count() == 1
            gate.set()
            outcomes = await asyncio.gather(*tasks)
            assert calls == 1
            values = [value for value, _ in outcomes]
            assert values == ["result"] * 50
            flags = sorted(coalesced for _, coalesced in outcomes)
            assert flags.count(False) == 1  # exactly one leader
            assert flags.count(True) == 49

        run(go())

    def test_distinct_keys_do_not_coalesce(self):
        async def go():
            coalescer = Coalescer()
            gate = asyncio.Event()
            calls = []

            async def work_for(key):
                calls.append(key)
                await gate.wait()
                return key

            tasks = [
                asyncio.create_task(coalescer.run(key, lambda k=key: work_for(k)))
                for key in ("a", "b")
            ]
            await asyncio.sleep(0)
            assert coalescer.leader_count() == 2
            gate.set()
            outcomes = await asyncio.gather(*tasks)
            assert sorted(calls) == ["a", "b"]
            assert all(not coalesced for _, coalesced in outcomes)

        run(go())

    def test_failure_propagates_to_all_waiters_and_clears_key(self):
        async def go():
            coalescer = Coalescer()
            gate = asyncio.Event()

            async def explode():
                await gate.wait()
                raise RuntimeError("boom")

            tasks = [
                asyncio.create_task(coalescer.run("k", explode))
                for _ in range(5)
            ]
            await asyncio.sleep(0)
            gate.set()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            assert all(isinstance(r, RuntimeError) for r in results)
            assert not coalescer.is_inflight("k")

        run(go())

    def test_key_is_reusable_after_completion(self):
        async def go():
            coalescer = Coalescer()
            calls = 0

            async def work():
                nonlocal calls
                calls += 1
                return calls

            first, _ = await coalescer.run("k", work)
            second, _ = await coalescer.run("k", work)
            # sequential (non-overlapping) calls each run: coalescing is
            # for in-flight sharing, caching is a different layer
            assert (first, second) == (1, 2)

        run(go())

    def test_cancelled_follower_does_not_cancel_leader(self):
        async def go():
            coalescer = Coalescer()
            gate = asyncio.Event()

            async def work():
                await gate.wait()
                return "survived"

            leader = asyncio.create_task(coalescer.run("k", work))
            await asyncio.sleep(0)
            follower = asyncio.create_task(coalescer.run("k", work))
            await asyncio.sleep(0)
            follower.cancel()
            with pytest.raises(asyncio.CancelledError):
                await follower
            gate.set()
            value, coalesced = await leader
            assert (value, coalesced) == ("survived", False)

        run(go())
