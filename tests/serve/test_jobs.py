"""Job lifecycle, event streaming, and the bounded job store."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.jobs import DONE, FAILED, PENDING, RUNNING, Job, JobStore


def make_job(job_id="job-000001", kind="sweep"):
    async def build():
        return Job(id=job_id, kind=kind)

    return asyncio.run(build())


class TestJob:
    def test_lifecycle_states(self):
        async def go():
            job = Job(id="job-000001", kind="sweep")
            assert job.status == PENDING and not job.finished
            job.start()
            assert job.status == RUNNING and not job.finished
            job.finish({"answer": 42})
            assert job.status == DONE and job.finished
            assert job.result == {"answer": 42}

        asyncio.run(go())

    def test_failure_records_error(self):
        async def go():
            job = Job(id="job-000001", kind="sweep")
            job.start()
            job.fail("it broke")
            assert job.status == FAILED and job.finished
            assert job.error == "it broke"
            assert job.describe()["error"] == "it broke"

        asyncio.run(go())

    def test_events_are_stamped_and_ordered(self):
        async def go():
            job = Job(id="job-000001", kind="sweep")
            job.start()
            job.emit("sweep.point.done", index=0)
            job.finish(None)
            kinds = [event["event"] for event in job.events]
            assert kinds == ["job.start", "sweep.point.done", "job.done"]
            assert all(event["job"] == "job-000001" for event in job.events)
            assert all("ts" in event for event in job.events)

        asyncio.run(go())

    def test_describe_shows_result_only_when_done(self):
        async def go():
            job = Job(id="job-000001", kind="sweep")
            assert "result" not in job.describe()
            job.start()
            job.finish({"x": 1})
            assert job.describe()["result"] == {"x": 1}

        asyncio.run(go())

    def test_wait_events_returns_immediately_past_cursor(self):
        async def go():
            job = Job(id="job-000001", kind="sweep")
            job.emit("one")
            events = await job.wait_events(0)
            assert [event["event"] for event in events] == ["one"]

        asyncio.run(go())

    def test_wait_events_blocks_until_emit(self):
        async def go():
            job = Job(id="job-000001", kind="sweep")

            async def emitter():
                await asyncio.sleep(0.01)
                job.emit("late")

            task = asyncio.create_task(emitter())
            events = await job.wait_events(0, timeout=5.0)
            await task
            assert [event["event"] for event in events] == ["late"]

        asyncio.run(go())

    def test_wait_events_empty_when_finished(self):
        async def go():
            job = Job(id="job-000001", kind="sweep")
            job.start()
            job.finish(None)
            events = await job.wait_events(len(job.events))
            assert events == []

        asyncio.run(go())


class TestJobStore:
    def test_sequential_ids(self):
        async def go():
            store = JobStore()
            first = store.create("sweep", {})
            second = store.create("sweep", {})
            assert (first.id, second.id) == ("job-000001", "job-000002")
            assert store.get("job-000002") is second
            assert store.get("job-999999") is None

        asyncio.run(go())

    def test_live_bound_refuses_admission(self):
        async def go():
            store = JobStore(max_live=2)
            a = store.create("sweep", {})
            store.create("sweep", {})
            assert store.create("sweep", {}) is None
            a.start()
            a.finish(None)  # frees a live slot
            assert store.create("sweep", {}) is not None

        asyncio.run(go())

    def test_finished_jobs_evict_oldest_first(self):
        async def go():
            store = JobStore(max_live=10, keep_finished=2)
            jobs = [store.create("sweep", {}) for _ in range(3)]
            for job in jobs:
                job.start()
                job.finish(None)
            store.create("sweep", {})  # triggers eviction
            assert store.get(jobs[0].id) is None
            assert store.get(jobs[1].id) is not None
            assert store.get(jobs[2].id) is not None

        asyncio.run(go())

    def test_describe_counts_by_status(self):
        async def go():
            store = JobStore()
            store.create("sweep", {})
            running = store.create("sweep", {})
            running.start()
            summary = store.describe()
            assert summary["total"] == 2
            assert summary["pending"] == 1
            assert summary["running"] == 1

        asyncio.run(go())

    def test_rejects_bad_max_live(self):
        with pytest.raises(ValueError, match="max_live"):
            JobStore(max_live=0)
