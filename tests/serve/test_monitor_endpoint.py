"""``GET /monitor``: the health-estimator's posterior over HTTP."""

from __future__ import annotations

import asyncio

from repro.monitor.controller import MonitorController
from repro.monitor.policies import PeriodicPolicy
from repro.nversion.voting import VotingScheme
from repro.obs import registry_override
from repro.perception.parameters import PerceptionParameters
from repro.serve.client import request
from repro.serve.monitorview import monitor_snapshot
from repro.simulation.voter import Voter
from tests.serve.conftest import running_service
from tests.serve.test_app import fast_config


def feed_round(controller, now, outputs, truth=0):
    voter = Voter(VotingScheme.bft_with_rejuvenation(1, 1))
    tally = voter.tally(outputs, truth)
    return controller.observe_round(now, outputs, tally, voter.classify(tally))


def deviating_controller(rounds=60):
    """A controller (and its registry) that has flagged its last module."""
    parameters = PerceptionParameters.six_version_defaults()
    controller = MonitorController(parameters, PeriodicPolicy())
    controller.begin_run()
    n = parameters.n_modules
    with registry_override() as registry:
        for i in range(rounds):
            feed_round(controller, float(i + 1), [0] * (n - 1) + [7])
    return controller, registry, n


class TestMonitorEndpoint:
    def test_unattached_service_reports_detached_zeros(self):
        async def go():
            # a fresh registry: earlier tests may have fed monitor
            # counters into the process-default one
            with registry_override():
                async with running_service(fast_config()) as (_, host, port):
                    response = await request(host, port, "GET", "/monitor")
                    assert response.status == 200
                    body = response.json()
                    assert body["attached"] is False
                    assert body["counters"] == {}
                    assert body["disagreement"] is None
                    assert "modules" not in body

        asyncio.run(go())

    def test_attached_controller_exposes_posterior_and_flags(self):
        controller, registry, n = deviating_controller()

        async def go():
            async with running_service(fast_config()) as (
                service, host, port,
            ):
                service.attach_monitor(controller, registry=registry)
                response = await request(host, port, "GET", "/monitor")
                assert response.status == 200
                body = response.json()
                assert body["attached"] is True
                assert body["counters"]["monitor.rounds"] == 60.0
                assert body["counters"]["monitor.flags"] >= 1.0
                assert body["disagreement"]["count"] == 60
                assert {"p50", "p95", "p99"} <= set(body["disagreement"])

                modules = body["modules"]
                assert len(modules) == n
                deviant = modules[n - 1]
                assert deviant["flagged"] is True
                assert (
                    deviant["posterior"] >= body["detection_threshold"]
                )
                assert all(
                    m["posterior"] < body["detection_threshold"]
                    for m in modules[: n - 1]
                )
                assert body["flagged"] == [n - 1]

                assert body["policy"]["name"] == "periodic"
                summary = body["summary"]
                assert summary["rounds"] == 60
                assert 0.0 <= summary["false_trigger_rate"] <= 1.0

        asyncio.run(go())

    def test_monitor_endpoint_is_get_only(self):
        async def go():
            async with running_service(fast_config()) as (_, host, port):
                response = await request(
                    host, port, "POST", "/monitor", payload={}
                )
                assert response.status == 405

        asyncio.run(go())


class TestMonitorSnapshotView:
    def test_snapshot_is_json_serializable_and_sorted(self):
        import json

        controller, registry, _ = deviating_controller(rounds=20)
        snapshot = monitor_snapshot(registry, controller)
        dumped = json.dumps(snapshot, sort_keys=True)
        assert json.loads(dumped) == snapshot
        counters = list(snapshot["counters"])
        assert counters == sorted(counters)
        assert all(key.startswith("monitor.") for key in counters)

    def test_snapshot_without_controller_has_no_module_view(self):
        with registry_override() as registry:
            pass
        snapshot = monitor_snapshot(registry, None)
        assert snapshot == {
            "attached": False,
            "counters": {},
            "disagreement": None,
        }
