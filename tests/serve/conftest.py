"""Shared helpers: an in-process service wired for fast tests.

``running_service`` starts a :class:`~repro.serve.app.ReliabilityService`
on an ephemeral port with the thread executor (worker doubles don't
pickle, and a process pool would dominate test wall-clock) and always
tears it down.  Tests drive it through :mod:`repro.serve.client`.
"""

from __future__ import annotations

from contextlib import asynccontextmanager

from repro.serve import ReliabilityService, ServeConfig


@asynccontextmanager
async def running_service(config: ServeConfig | None = None, **kwargs):
    """An async context manager yielding ``(service, host, port)``."""
    config = config or ServeConfig(executor="thread", workers=4)
    service = ReliabilityService(config, **kwargs)
    host, port = await service.start()
    try:
        yield service, host, port
    finally:
        await service.stop()
