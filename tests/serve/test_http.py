"""Unit tests of the stdlib HTTP framing layer."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.http import (
    MAX_BODY_BYTES,
    ProtocolError,
    Request,
    Response,
    read_request,
)


def parse(raw: bytes, *, peer: str = "") -> Request | None:
    """Run ``read_request`` over an in-memory stream."""

    async def go() -> Request | None:
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, peer=peer)

    return asyncio.run(go())


class TestReadRequest:
    def test_parses_request_line_headers_and_body(self):
        request = parse(
            b"POST /v1/solve?x=1 HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"Content-Length: 16\r\n"
            b"\r\n"
            b'{"preset":"six"}',
            peer="10.0.0.7",
        )
        assert request.method == "POST"
        assert request.path == "/v1/solve"
        assert request.query == {"x": "1"}
        assert request.headers["host"] == "localhost"
        assert request.json() == {"preset": "six"}
        assert request.peer == "10.0.0.7"

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_truncated_head_is_400(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"GET /healthz HTTP/1.1\r\n")  # no blank line
        assert excinfo.value.status == 400

    def test_malformed_request_line_is_400(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"NONSENSE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_malformed_header_is_400(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
        assert excinfo.value.status == 400

    def test_oversized_head_is_413(self):
        filler = b"X-Pad: " + b"a" * 20_000 + b"\r\n"
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"GET / HTTP/1.1\r\n" + filler + b"\r\n")
        assert excinfo.value.status == 413

    def test_oversized_body_is_413(self):
        head = (
            f"POST / HTTP/1.1\r\nContent-Length: {MAX_BODY_BYTES + 1}\r\n\r\n"
        ).encode()
        with pytest.raises(ProtocolError) as excinfo:
            parse(head)
        assert excinfo.value.status == 413

    def test_bad_content_length_is_400(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert excinfo.value.status == 400

    def test_truncated_body_is_400(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort")
        assert excinfo.value.status == 400

    def test_chunked_bodies_are_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert excinfo.value.status == 400

    def test_non_json_body_raises_on_decode(self):
        request = parse(
            b"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\n{{{"
        )
        with pytest.raises(ProtocolError) as excinfo:
            request.json()
        assert excinfo.value.status == 400


class TestRequestProperties:
    def test_keep_alive_defaults_on(self):
        request = parse(b"GET / HTTP/1.1\r\n\r\n")
        assert request.keep_alive

    def test_connection_close_disables_keep_alive(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_client_key_prefers_header_then_peer(self):
        tagged = parse(
            b"GET / HTTP/1.1\r\nX-Client-Id: tenant-a\r\n\r\n", peer="1.2.3.4"
        )
        assert tagged.client_key() == "tenant-a"
        bare = parse(b"GET / HTTP/1.1\r\n\r\n", peer="1.2.3.4")
        assert bare.client_key() == "1.2.3.4"
        anonymous = parse(b"GET / HTTP/1.1\r\n\r\n")
        assert anonymous.client_key() == "anonymous"


class TestResponseFraming:
    def test_content_length_framing(self):
        response = Response.json({"ok": True})
        head = response.head_bytes(content_length=len(response.body))
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert f"Content-Length: {len(response.body)}".encode() in head
        assert b"Connection: keep-alive" in head

    def test_eof_framing_forces_close(self):
        head = Response(content_type="application/jsonl").head_bytes(
            content_length=None
        )
        assert b"Content-Length" not in head
        assert b"Connection: close" in head

    def test_error_body_carries_status_and_extras(self):
        response = Response.error(503, "full", headers={"Retry-After": "1.0"})
        assert response.status == 503
        assert b'"error": "full"' in response.body
        assert response.headers["Retry-After"] == "1.0"
