"""Cross-validation: analytic solvers vs Monte-Carlo vs the NVP runtime.

Three independent implementations of the same stochastic system must
agree: the analytic CTMC/MRGP pipeline, the generic DSPN discrete-event
simulator, and the domain-level perception runtime.
"""

import pytest

from repro.nversion.reliability import GeneralizedReliability
from repro.perception import PerceptionParameters, PerceptionSystem
from repro.perception.evaluation import evaluate
from repro.simulation import PerceptionRuntime


class TestDSPNSimulatorAgreement:
    def test_four_version(self, four_version_parameters):
        system = PerceptionSystem(four_version_parameters)
        analytic = system.expected_reliability()
        estimate = system.simulate(
            horizon=200000.0, warmup=3000.0, replications=8, seed=21
        )
        assert abs(estimate.mean - analytic) < max(3 * estimate.half_width, 0.02)

    def test_six_version_with_rejuvenation(self, six_version_parameters):
        system = PerceptionSystem(six_version_parameters)
        analytic = system.expected_reliability()
        estimate = system.simulate(
            horizon=100000.0, warmup=3000.0, replications=6, seed=22
        )
        assert abs(estimate.mean - analytic) < max(3 * estimate.half_width, 0.02)

    def test_state_probability_agreement(self, six_version_parameters):
        """Compare a state probability (not just the reward) across methods."""
        system = PerceptionSystem(six_version_parameters)
        from repro.dspn import simulate

        analytic_healthy = system.analyze().solution.probability(
            lambda m: m["Pmh"] == 6
        )
        estimate = simulate(
            system.net,
            reward=lambda m: float(m["Pmh"] == 6),
            horizon=100000.0,
            warmup=3000.0,
            replications=6,
            seed=23,
        )
        assert abs(estimate.mean - analytic_healthy) < max(
            3 * estimate.half_width, 0.05
        )


class TestRuntimeAgreement:
    """The event-driven NVP runtime measures per-request outcomes; its
    empirical reliability must match the analytic model built on the
    *same* failure model (the normalized dependent model)."""

    @pytest.mark.parametrize("seed", [31, 32])
    def test_four_version(self, four_version_parameters, seed):
        general = GeneralizedReliability(
            n_modules=4,
            threshold=3,
            p=four_version_parameters.p,
            p_prime=four_version_parameters.p_prime,
            alpha=four_version_parameters.alpha,
        )
        analytic = evaluate(
            four_version_parameters, reliability=general
        ).expected_reliability
        runtime = PerceptionRuntime(
            four_version_parameters, request_period=2.0, seed=seed
        )
        report = runtime.run(300000.0, warmup=3000.0)
        assert abs(report.reliability_safe_skip - analytic) < 0.03

    def test_six_version(self, six_version_parameters):
        general = GeneralizedReliability(
            n_modules=6,
            threshold=4,
            p=six_version_parameters.p,
            p_prime=six_version_parameters.p_prime,
            alpha=six_version_parameters.alpha,
        )
        analytic = evaluate(
            six_version_parameters, reliability=general
        ).expected_reliability
        runtime = PerceptionRuntime(
            six_version_parameters, request_period=2.0, seed=33
        )
        report = runtime.run(300000.0, warmup=3000.0)
        assert abs(report.reliability_safe_skip - analytic) < 0.03


class TestEndToEndParameterDerivation:
    def test_mlsim_to_model_pipeline(self):
        """§V-A derivation feeding §V-B evaluation, end to end."""
        from repro.mlsim import estimate_parameters

        derived = estimate_parameters(seed=1)
        params = PerceptionParameters.six_version_defaults(
            p=derived.p, p_prime=derived.p_prime
        )
        reliability = evaluate(params).expected_reliability
        # the derived operating point sits near the paper's, so the
        # reliability must sit near the headline value
        assert abs(reliability - 0.943) < 0.05
