"""Shape assertions for the paper's figures (crossovers, trends).

Absolute values come from our simulator-substrate, but the qualitative
claims — who wins, where the curves cross, which parameter hurts whom —
must match the paper.  These tests enumerate those claims.
"""

import pytest

from repro.analysis.crossover import find_crossovers
from repro.analysis.sweeps import sweep_parameter
from repro.perception.parameters import PerceptionParameters


@pytest.fixture(scope="module")
def four():
    return PerceptionParameters.four_version_defaults()


@pytest.fixture(scope="module")
def six():
    return PerceptionParameters.six_version_defaults()


class TestFig3Claims:
    def test_reliability_declines_beyond_optimum(self, six):
        """Paper: increasing 1/gamma after a point decreases reliability."""
        result = sweep_parameter(
            six, "rejuvenation_interval", [450, 600, 1000, 2000, 3000]
        )
        r = result.reliabilities
        assert all(a > b for a, b in zip(r, r[1:]))

    def test_total_decline_magnitude(self, six):
        """From 200 s to 3000 s the curve loses roughly 8-10 % (figure scale)."""
        result = sweep_parameter(six, "rejuvenation_interval", [200, 3000])
        drop = result.reliabilities[0] - result.reliabilities[1]
        assert 0.05 < drop < 0.15


class TestFig4aClaims:
    def test_both_systems_improve_with_mttc(self, four, six):
        for base in (four, six):
            result = sweep_parameter(base, "mttc", [400, 1523, 8000])
            r = result.reliabilities
            assert r[0] < r[1] < r[2]

    def test_two_crossovers(self, four, six):
        crossings = find_crossovers(
            four, six, "mttc", [300, 600, 1523, 5000, 10000]
        )
        assert len(crossings) == 2
        low, high = sorted(c.value for c in crossings)
        # paper: 525 s and 6000 s; our calibrated substrate: ~307 s / ~8100 s
        assert 250 < low < 600
        assert 5000 < high < 10000

    def test_4v_wins_at_extremes(self, four, six):
        from repro.perception.evaluation import evaluate

        for mttc in (300.0, 12000.0):
            r4 = evaluate(four.replace(mttc=mttc)).expected_reliability
            r6 = evaluate(six.replace(mttc=mttc)).expected_reliability
            assert r4 > r6

    def test_6v_wins_at_default(self, four, six):
        from repro.perception.evaluation import evaluate

        assert (
            evaluate(six).expected_reliability > evaluate(four).expected_reliability
        )


class TestFig4bClaims:
    def test_low_dependency_better(self, four, six):
        for base in (four, six):
            result = sweep_parameter(base, "alpha", [0.1, 1.0])
            assert result.reliabilities[0] > result.reliabilities[1]

    def test_impact_larger_on_six_version(self, four, six):
        """Paper: ~1.5% impact on 4v vs ~6.6% on 6v."""
        spans = {}
        for name, base in (("4v", four), ("6v", six)):
            result = sweep_parameter(base, "alpha", [0.1, 1.0])
            spans[name] = (
                result.reliabilities[0] - result.reliabilities[1]
            ) / result.reliabilities[0]
        assert spans["6v"] > spans["4v"]
        assert 0.005 < spans["4v"] < 0.04
        assert 0.03 < spans["6v"] < 0.10


class TestFig4cClaims:
    def test_six_version_wins_everywhere(self, four, six):
        from repro.perception.evaluation import evaluate

        for p in (0.01, 0.08, 0.2):
            r4 = evaluate(four.replace(p=p)).expected_reliability
            r6 = evaluate(six.replace(p=p)).expected_reliability
            assert r6 > r4

    def test_impact_larger_on_six_version(self, four, six):
        """Paper: ~13% on 6v vs ~5% on 4v when p goes 0.01 -> 0.2."""
        spans = {}
        for name, base in (("4v", four), ("6v", six)):
            result = sweep_parameter(base, "p", [0.01, 0.2])
            spans[name] = (
                result.reliabilities[0] - result.reliabilities[1]
            ) / result.reliabilities[0]
        assert spans["6v"] > spans["4v"]
        assert 0.02 < spans["4v"] < 0.09
        assert 0.08 < spans["6v"] < 0.20


class TestFig4dClaims:
    def test_crossover_near_point_three(self, four, six):
        crossings = find_crossovers(four, six, "p_prime", [0.1, 0.3, 0.6])
        assert len(crossings) == 1
        assert 0.2 < crossings[0].value < 0.35

    def test_rejuvenation_mitigates_high_p_prime(self, four, six):
        """Paper: at p'=0.8 the 6v system retains high reliability."""
        from repro.perception.evaluation import evaluate

        r4 = evaluate(four.replace(p_prime=0.8)).expected_reliability
        r6 = evaluate(six.replace(p_prime=0.8)).expected_reliability
        assert r6 > 0.85
        assert r4 < 0.6
