"""Monitor vs analytic model: one set of rates, two implementations.

The monitoring subsystem is only trustworthy if its internals agree
with the analytic pipeline they are derived from.  Two cross-checks:

* **occupancy** — the long-run (i, j, k) census of a monitored run must
  match the DSPN steady-state π (and attaching a passive monitor must
  not shift it);
* **priors** — the Bayesian filter's hazard rates must be exactly the
  rates of the DSPN's Tc/Tf transitions under single-server (CHANNEL)
  semantics, and its healthy-deviation likelihood must be the marginal
  per-module error probability of the dependent error model.
"""

import pytest

from repro.monitor import (
    HealthEstimator,
    MonitorController,
    PeriodicPolicy,
    healthy_deviation_probability,
    per_module_compromise_rate,
)
from repro.perception.parameters import PerceptionParameters
from repro.perception.rejuvenation import build_rejuvenation_net
from repro.simulation.faults import FaultSemantics
from repro.simulation.runtime import PerceptionRuntime
from repro.simulation.trace import compare_with_analytic


@pytest.fixture(scope="module")
def parameters():
    return PerceptionParameters.six_version_defaults()


@pytest.fixture(scope="module")
def monitored_occupancy(parameters):
    """One long monitored run, shared across the occupancy tests."""
    monitor = MonitorController(parameters, PeriodicPolicy())
    runtime = PerceptionRuntime(
        parameters, request_period=25.0, seed=2023, monitor=monitor
    )
    # requests only sample outputs; the census dynamics are driven by
    # the fault/rejuvenation events, so a sparse request stream keeps
    # this long horizon cheap
    report = runtime.run(400000.0, warmup=5000.0, collect_occupancy=True)
    return report.occupancy


class TestOccupancyAgainstSteadyState:
    def test_long_run_census_matches_pi(self, parameters, monitored_occupancy):
        comparison = compare_with_analytic(monitored_occupancy, parameters)
        assert comparison.total_variation_distance < 0.05

    def test_state_ranking_agrees(self, parameters, monitored_occupancy):
        """Both sides must rank the dominant censuses identically.

        Under Table II the compromised dwell (mttf = 3000 s) is long
        enough that (5, 1, 0) — one silently compromised module —
        outweighs the all-healthy census on *both* sides; agreeing on
        that ordering is a sharper check than the distance alone."""
        comparison = compare_with_analytic(monitored_occupancy, parameters)
        empirical_order = sorted(
            comparison.rows, key=lambda row: -row[1]
        )[:3]
        analytic_order = sorted(comparison.rows, key=lambda row: -row[2])[:3]
        assert [row[0] for row in empirical_order] == [
            row[0] for row in analytic_order
        ]

    def test_passive_monitor_does_not_shift_occupancy(
        self, parameters, monitored_occupancy
    ):
        bare = PerceptionRuntime(
            parameters, request_period=25.0, seed=2023
        ).run(400000.0, warmup=5000.0, collect_occupancy=True)
        assert bare.occupancy.dwell == monitored_occupancy.dwell


class TestEstimatorPriorConsistency:
    def test_hazards_are_the_dspn_transition_rates(self, parameters):
        """CHANNEL semantics = single-server firing: the filter's
        per-module hazards must equal the net's Tc/Tf rates."""
        net = build_rejuvenation_net(parameters)
        marking = net.initial_marking
        tc = net.transitions["Tc"].rate(marking)
        tf = net.transitions["Tf"].rate(marking)
        estimator = HealthEstimator(parameters)
        assert estimator.compromise_rate == pytest.approx(
            tc / parameters.n_modules
        )
        assert estimator.failure_rate == pytest.approx(tf)

    def test_per_module_semantics_matches_net_rate(self, parameters):
        assert per_module_compromise_rate(
            parameters, FaultSemantics.PER_MODULE
        ) == pytest.approx(parameters.lambda_c)

    def test_healthy_likelihood_is_marginal_error_probability(self, parameters):
        """P(deviate | healthy) = p·(1/N + (1−1/N)·α): the chance of
        being the error leader plus the chance of being dragged along —
        the dependent model's per-module marginal.  Check it against a
        direct Monte-Carlo of the runtime's output sampler."""
        import numpy as np

        runtime = PerceptionRuntime(parameters, request_period=1.0, seed=11)
        rng = np.random.default_rng(11)
        runtime.rng = rng
        deviations = 0
        rounds = 40000
        for _ in range(rounds):
            outputs = runtime._module_outputs(0)
            deviations += sum(output != 0 for output in outputs)
        observed = deviations / (rounds * parameters.n_modules)
        assert observed == pytest.approx(
            healthy_deviation_probability(parameters), rel=0.05
        )

    def test_steady_state_belief_bounded_by_pi(self, parameters):
        """With no evidence, the filter's belief must stay within the
        same order as the analytic compromised fraction — the prior
        drift cannot invent more suspicion than the model's dynamics."""
        estimator = HealthEstimator(parameters)
        # one rejuvenation interval without any vote evidence
        drifted = estimator.probability_compromised(
            0, now=parameters.rejuvenation_interval
        )
        hazard = estimator.compromise_rate * parameters.rejuvenation_interval
        assert 0.0 < drifted < 2 * hazard
