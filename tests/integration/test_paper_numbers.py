"""Golden tests against the paper's reported numbers (§V-B).

These are the headline regression tests of the reproduction: they pin
the full pipeline (net construction → reachability → vanishing
elimination → CTMC/MRGP solve → Eq. 1 rewards) to the values measured
during calibration and to the paper's claims.
"""

import math

import pytest

from repro.perception import PerceptionParameters, PerceptionSystem
from repro.perception.evaluation import evaluate

# The paper's printed values and the reproduction's calibrated values.
PAPER_4V = 0.8233477
PAPER_6V = 0.93464665
REPRO_4V = 0.8223487
REPRO_6V = 0.9430077


class TestHeadlineNumbers:
    def test_four_version_regression(self):
        value = evaluate(
            PerceptionParameters.four_version_defaults()
        ).expected_reliability
        assert math.isclose(value, REPRO_4V, abs_tol=1e-6)

    def test_four_version_within_paper_tolerance(self):
        value = evaluate(
            PerceptionParameters.four_version_defaults()
        ).expected_reliability
        assert abs(value - PAPER_4V) / PAPER_4V < 0.005  # 0.5 %

    def test_six_version_regression(self):
        value = evaluate(
            PerceptionParameters.six_version_defaults()
        ).expected_reliability
        assert math.isclose(value, REPRO_6V, abs_tol=1e-6)

    def test_six_version_within_paper_tolerance(self):
        value = evaluate(
            PerceptionParameters.six_version_defaults()
        ).expected_reliability
        assert abs(value - PAPER_6V) / PAPER_6V < 0.015  # 1.5 %

    def test_improvement_exceeds_thirteen_percent(self):
        """'a reliability improvement superior to 13%' (abstract)."""
        four = evaluate(PerceptionParameters.four_version_defaults())
        six = evaluate(PerceptionParameters.six_version_defaults())
        improvement = six.expected_reliability / four.expected_reliability - 1
        assert improvement > 0.13


class TestStateProbabilityStructure:
    def test_six_version_dominant_states(self):
        """Rejuvenation keeps most mass in (>=4 healthy) states."""
        result = evaluate(PerceptionParameters.six_version_defaults())
        healthy_mass = sum(
            probability
            for state, probability in result.state_probabilities.items()
            if state.healthy >= 4
        )
        assert healthy_mass > 0.8

    def test_four_version_mass_in_compromised_states(self):
        """Without rejuvenation most modules sit compromised (mttf >> mttc)."""
        result = evaluate(PerceptionParameters.four_version_defaults())
        compromised_mass = sum(
            probability
            for state, probability in result.state_probabilities.items()
            if state.compromised >= 3
        )
        assert compromised_mass > 0.5


class TestMethodDispatch:
    def test_four_version_is_ctmc(self):
        system = PerceptionSystem(PerceptionParameters.four_version_defaults())
        assert system.analyze().solution.method == "ctmc"

    def test_six_version_is_mrgp(self):
        system = PerceptionSystem(PerceptionParameters.six_version_defaults())
        assert system.analyze().solution.method == "mrgp"
