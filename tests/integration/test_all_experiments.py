"""Completeness guard: every registered experiment runs end to end.

Individual experiments are exercised in detail elsewhere; this test
catches bitrot in any runner (a renamed parameter, a broken import, an
observation string that divides by zero) by running the whole registry
and sanity-checking each report.
"""

import pytest

from repro.experiments import EXPERIMENT_IDS, run_experiment


@pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
def test_experiment_runs_and_renders(experiment_id):
    report = run_experiment(experiment_id)
    assert report.experiment_id == experiment_id
    assert report.rows, f"{experiment_id} produced no rows"
    for row in report.rows:
        assert len(row) == len(report.headers)
    text = report.render()
    assert experiment_id in text
    # every report must compare against the paper and state findings
    assert report.paper_claims
    assert report.observations or report.plot_series
